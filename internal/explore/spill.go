package explore

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/model"
	"repro/internal/obs"
)

// Frontier storage and the spill governor. In the default packed mode a
// BFS level is two flat arrays — node ids and a contiguous []uint64 arena
// of fixed-width packed records, stride words per entry — and the level is
// materialised into model.Config values only arenaBatch entries at a time,
// immediately before expansion. The legacy reference mode (Options.
// legacyFrontier) retains full configurations, as the engine originally
// did; the equivalence tests hold the two modes to identical results.
//
// On spaces whose widest level outgrows the spill budget, the governor
// flushes cold runs of the accumulating next level to files under
// SpillDir and drops them from memory. Packed spill chunks extend the
// original id-list format in place: the same count-prefixed uvarint id
// list, followed by the run's packed words verbatim, so reloading a chunk
// is a read plus dictionary lookups instead of a witness-path replay per
// entry (the legacy mode still replays). Chunks are flushed from the
// front of the level and consumed before the in-memory remainder, so the
// visit order — and therefore every id and witness path — is identical to
// an unspilled run.

// arenaBatch is how many packed frontier entries are materialised into
// configurations at once: large enough to amortise dispatch, small enough
// that the transient Config working set stays a rounding error next to
// the arena itself (a variable so the equivalence tests can force many
// batches onto small spaces).
var arenaBatch = 8192

// frontier holds one BFS level as spilled chunks (cold, on disk) followed
// by the in-memory entries (hot), in visit order. Packed mode fills
// ids/words; legacy mode fills mem.
type frontier struct {
	spilled []spillChunk

	// stride is the packed record width in words; 0 selects legacy mode.
	stride int
	ids    []int32
	words  []uint64

	mem      []levelEntry
	memBytes int64
}

// size returns the number of entries across disk and memory.
func (f *frontier) size() int {
	n := len(f.mem) + len(f.ids)
	for _, ch := range f.spilled {
		n += ch.count
	}
	return n
}

// add appends a freshly discovered legacy-mode entry, charging it to the
// governor's budget and spilling the accumulated tail when over.
func (f *frontier) add(e levelEntry, g *spillGovernor) {
	f.mem = append(f.mem, e)
	if g != nil {
		f.memBytes += g.entrySize
		g.maybeSpill(f)
	}
}

// addPacked appends a freshly discovered packed entry: its node id and its
// stride-long packed record.
func (f *frontier) addPacked(id int32, rec []uint64, g *spillGovernor) {
	f.ids = append(f.ids, id)
	f.words = append(f.words, rec...)
	if g != nil {
		f.memBytes += g.entrySize
		g.maybeSpill(f)
	}
}

// numBatches returns how many expansion batches the level drains in: one
// per spilled chunk, then the in-memory tail (in arenaBatch slices when
// packed).
func (f *frontier) numBatches() int {
	n := len(f.spilled)
	if f.stride > 0 {
		n += (len(f.ids) + arenaBatch - 1) / arenaBatch
	} else if len(f.mem) > 0 {
		n++
	}
	return n
}

// batchBuf is the coordinator's reusable batching scratch: the entry
// window handed to the expander and the reload buffers for spilled chunks.
// One buffer serves one search; a batch dies when the next is built.
type batchBuf struct {
	entries []levelEntry
	ids     []int32
	words   []uint64
}

// batch returns the bi-th batch in frontier order, consuming (reading and
// deleting) spill files as their turn comes. Packed batches are windowed
// into buf; the legacy in-memory tail is returned as is.
func (f *frontier) batch(bi int, res *Result, root model.Config, buf *batchBuf) ([]levelEntry, error) {
	if f.stride > 0 {
		var (
			ids   []int32
			words []uint64
		)
		if bi < len(f.spilled) {
			ch := &f.spilled[bi]
			var err error
			buf.ids, buf.words, err = readSpillChunk(ch.path, f.stride, buf.ids[:0], buf.words[:0])
			if err != nil {
				return nil, err
			}
			os.Remove(ch.path)
			ch.path = ""
			ids, words = buf.ids, buf.words
		} else {
			lo := (bi - len(f.spilled)) * arenaBatch
			hi := min(lo+arenaBatch, len(f.ids))
			ids = f.ids[lo:hi]
			words = f.words[lo*f.stride : hi*f.stride]
		}
		return buf.window(f.stride, ids, words), nil
	}
	if bi < len(f.spilled) {
		return f.spilled[bi].load(res, root, buf)
	}
	return f.mem, nil
}

// window wraps a run of packed records as levelEntry values. The packed
// expansion path enumerates moves from the interned state ids and steps
// directly on the words, so no configuration is decoded here — an entry is
// just its node id and a view into the arena.
func (b *batchBuf) window(stride int, ids []int32, words []uint64) []levelEntry {
	if cap(b.entries) < len(ids) {
		b.entries = make([]levelEntry, len(ids))
	}
	entries := b.entries[:len(ids)]
	for i, id := range ids {
		entries[i] = levelEntry{id: id, words: words[i*stride : (i+1)*stride]}
	}
	return entries
}

// allIDs returns the node ids of every entry in order, reading (but not
// consuming) spilled chunks. Snapshots use it.
func (f *frontier) allIDs() ([]int32, error) {
	out := make([]int32, 0, f.size())
	for i := range f.spilled {
		ids, err := readSpillChunkIDs(f.spilled[i].path)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	out = append(out, f.ids...)
	for _, e := range f.mem {
		out = append(out, e.id)
	}
	return out, nil
}

// clear retires a consumed frontier for reuse as the next accumulator:
// configuration references are dropped so the previous level's heap can be
// collected, and stray spill files are deleted.
func (f *frontier) clear() {
	f.discard()
	clear(f.mem)
	f.mem = f.mem[:0]
	f.ids = f.ids[:0]
	f.words = f.words[:0]
	f.memBytes = 0
	f.spilled = f.spilled[:0]
}

// discard deletes any spill files still on disk (normal drains consume
// them all; early exits leave the tail for this to sweep).
func (f *frontier) discard() {
	for i := range f.spilled {
		if p := f.spilled[i].path; p != "" {
			os.Remove(p)
		}
	}
}

// spillChunk is one flushed run of frontier entries: a chunk file plus its
// entry count.
type spillChunk struct {
	path  string
	count int
}

// load reads a legacy chunk back, deletes its file, and rebuilds each
// entry's configuration by path replay into buf.
func (ch *spillChunk) load(res *Result, root model.Config, buf *batchBuf) ([]levelEntry, error) {
	ids, _, err := readSpillChunk(ch.path, 0, buf.ids[:0], nil)
	if err != nil {
		return nil, err
	}
	buf.ids = ids
	os.Remove(ch.path)
	ch.path = ""
	entries := buf.entries[:0]
	for _, id := range ids {
		cfg, err := replayTo(res, root, int(id))
		if err != nil {
			return nil, fmt.Errorf("explore: spilled frontier: %w", err)
		}
		entries = append(entries, levelEntry{cfg: cfg, id: id})
	}
	buf.entries = entries
	return entries, nil
}

// spillGovernor owns the budget policy. nil disables spilling entirely.
type spillGovernor struct {
	dir       string
	budget    int64
	entrySize int64
	scope     *obs.Scope
	disabled  bool
}

func newSpillGovernor(opts *Options, root model.Config, stride int) *spillGovernor {
	if opts.SpillDir == "" || opts.SpillBudget <= 0 {
		return nil
	}
	g := &spillGovernor{
		dir:    opts.SpillDir,
		budget: opts.SpillBudget,
		scope:  opts.Obs,
	}
	if stride > 0 {
		// A packed entry is its id plus stride words of arena.
		g.entrySize = 8*int64(stride) + 8
	} else {
		// A legacy entry retains one immutable Config: two slice headers
		// plus per-process state and per-register values. The constants are
		// a deliberate overestimate — the budget is a brake, not an
		// accounting system.
		g.entrySize = 96 + 48*int64(root.NumProcesses()+root.NumRegisters())
	}
	return g
}

// maybeSpill flushes the accumulated in-memory tail once it exceeds the
// budget. A write failure disables the governor for the rest of the search
// — spilling is a memory optimisation, never worth failing a proof over —
// and is reported as a trace event.
func (g *spillGovernor) maybeSpill(f *frontier) {
	if g.disabled || f.memBytes <= g.budget {
		return
	}
	var (
		path    string
		bytes   int64
		err     error
		entries int
	)
	if f.stride > 0 {
		if entries = len(f.ids); entries == 0 {
			return
		}
		path, bytes, err = writeSpillChunk(g.dir, f.ids, f.words)
	} else {
		if entries = len(f.mem); entries == 0 {
			return
		}
		ids := make([]int32, len(f.mem))
		for i := range f.mem {
			ids[i] = f.mem[i].id
		}
		path, bytes, err = writeSpillChunk(g.dir, ids, nil)
	}
	if err != nil {
		g.disabled = true
		g.scope.Event("spill_error", slog.String("err", err.Error()))
		return
	}
	g.scope.Counter("spill_chunks").Add(1)
	g.scope.Counter("spill_bytes").Add(bytes)
	g.scope.Event("spill_chunk",
		slog.Int("entries", entries),
		slog.Int64("bytes", bytes),
	)
	f.spilled = append(f.spilled, spillChunk{path: path, count: entries})
	clear(f.mem)
	f.mem = f.mem[:0]
	f.ids = f.ids[:0]
	f.words = f.words[:0]
	f.memBytes = 0
}

// ErrSpillCorrupt tags any malformation of a spill chunk file — bad magic,
// truncation, a flipped bit anywhere in the payload, trailing garbage. The
// read path verifies the whole file against its checksum trailer before
// parsing a single id, so a corrupt chunk can fail typed but never yield
// wrong ids or attempt an absurd allocation.
var ErrSpillCorrupt = errors.New("explore: spill chunk corrupt")

// spillMagic opens every spill chunk file: a human-greppable tag plus a
// format version byte so `head -c8` identifies the file. Version 2 added
// the sha256 trailer.
const spillMagic = "SBSPILL\x02"

// spillFile is the slice of *os.File the spill writer uses. It is a seam
// for fault injection: the tests swap newSpillFile for one returning a
// faults.FaultyFile (which satisfies this interface structurally) to prove
// disk-pressure failures surface as typed errors instead of truncating.
type spillFile interface {
	io.Writer
	Close() error
	Name() string
}

// newSpillFile creates a fresh spill chunk file in dir; a test hook.
var newSpillFile = func(dir string) (spillFile, error) {
	return os.CreateTemp(dir, "frontier-*.spill")
}

// writeSpillChunk writes one chunk file in dir:
//
//	[8-byte magic][uvarint count][count uvarint ids][words as LE uint64...][sha256 trailer]
//
// The trailer digests every preceding byte. Spill files are transient
// scratch consumed by the same process, so they are not fsynced — but they
// are checksummed: a disk under pressure that short-writes or flips bits
// must surface as a typed read error, never as silently wrong frontier ids
// (the id list steers witness-path replay, so a wrong id corrupts proofs).
func writeSpillChunk(dir string, ids []int32, words []uint64) (string, int64, error) {
	f, err := newSpillFile(dir)
	if err != nil {
		return "", 0, err
	}
	sum := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(f, sum), 1<<16)
	var buf [binary.MaxVarintLen64]byte
	written := int64(0)
	_, werr := bw.WriteString(spillMagic)
	written += int64(len(spillMagic))
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		written += int64(n)
		_, err := bw.Write(buf[:n])
		return err
	}
	if werr == nil {
		werr = put(uint64(len(ids)))
	}
	for i := 0; werr == nil && i < len(ids); i++ {
		werr = put(uint64(ids[i]))
	}
	for i := 0; werr == nil && i < len(words); i++ {
		binary.LittleEndian.PutUint64(buf[:8], words[i])
		written += 8
		_, werr = bw.Write(buf[:8])
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		// The trailer goes to the file only — it must not digest itself.
		n, terr := f.Write(sum.Sum(nil))
		written += int64(n)
		werr = terr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return "", 0, fmt.Errorf("explore: spill chunk write: %w", werr)
	}
	return f.Name(), written, nil
}

// readSpillChunk reads a chunk file back into the provided (reusable)
// slices: the id list, then — when stride > 0 — count*stride packed words.
// The file is verified against its checksum trailer in full before any
// parsing; every malformation is reported wrapping ErrSpillCorrupt.
func readSpillChunk(path string, stride int, ids []int32, words []uint64) ([]int32, []uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(spillMagic)+sha256.Size {
		return nil, nil, fmt.Errorf("%w: %s: %d bytes is shorter than magic+trailer", ErrSpillCorrupt, path, len(data))
	}
	if string(data[:len(spillMagic)]) != spillMagic {
		return nil, nil, fmt.Errorf("%w: %s: bad magic %q", ErrSpillCorrupt, path, data[:len(spillMagic)])
	}
	payload := data[:len(data)-sha256.Size]
	var trailer [sha256.Size]byte
	copy(trailer[:], data[len(payload):])
	if sha256.Sum256(payload) != trailer {
		return nil, nil, fmt.Errorf("%w: %s: checksum mismatch", ErrSpillCorrupt, path)
	}
	body := payload[len(spillMagic):]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: %s: count", ErrSpillCorrupt, path)
	}
	body = body[n:]
	if count > uint64(len(body)) {
		// Each id takes at least one byte; a count beyond the remaining
		// bytes cannot be honest (and must not drive an allocation).
		return nil, nil, fmt.Errorf("%w: %s: count %d exceeds payload", ErrSpillCorrupt, path, count)
	}
	for i := uint64(0); i < count; i++ {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: %s: entry %d", ErrSpillCorrupt, path, i)
		}
		body = body[n:]
		ids = append(ids, int32(v))
	}
	if stride > 0 {
		want := count * uint64(stride) * 8
		if uint64(len(body)) != want {
			return nil, nil, fmt.Errorf("%w: %s: %d word bytes, want %d", ErrSpillCorrupt, path, len(body), want)
		}
		for i := uint64(0); i < count*uint64(stride); i++ {
			words = append(words, binary.LittleEndian.Uint64(body[i*8:]))
		}
	}
	// stride == 0 tolerates a word tail: readSpillChunkIDs reads packed
	// files too, and the tail was already checksum-verified above.
	return ids, words, nil
}

// readSpillChunkIDs reads and verifies a chunk file, returning only its
// id-list prefix (both the packed and legacy formats share it).
func readSpillChunkIDs(path string) ([]int32, error) {
	ids, _, err := readSpillChunk(path, 0, nil, nil)
	return ids, err
}
