package explore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
)

// TestReachPackedObservedAllocBound is the flight-recorder overhead gate on
// the production path: a packed-arena DiskRace search with a fully enabled
// scope — counters, gauges, probe-length histogram AND a live time-series
// recorder ticking at every level — must stay within the same 4 allocs per
// configuration budget that benchreport -check enforces. Instrumentation is
// per-level; if anything leaks into the per-configuration loop this blows up
// immediately.
func TestReachPackedObservedAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates alloc counts; the 4 allocs/config gate is a production bound")
	}
	disk := consensus.DiskRace{}
	c := model.NewConfig(disk, []model.Value{"0", "1", "1"})
	opts := Options{
		KeyFn:      disk.CanonicalKey,
		KeyTo:      disk.CanonicalKeyTo,
		MaxConfigs: 20_000,
		Workers:    1,
	}
	scope := obs.NewScope(nil)
	rec := obs.NewRecorder(scope.Registry(), time.Microsecond, 64)
	scope.SetRecorder(rec)
	opts.Obs = scope

	var res *Result
	allocs := testing.AllocsPerRun(3, func() {
		var err error
		res, err = Reach(context.Background(), c, []int{0, 1, 2}, opts, nil)
		if err != nil && !errors.Is(err, ErrCapped) {
			t.Fatal(err)
		}
	})
	perConfig := allocs / float64(res.Count)
	if perConfig > 4 {
		t.Fatalf("%.2f allocations per configuration with recorder + metrics enabled (total %.0f for %d configs); the flight recorder has entered the hot path",
			perConfig, allocs, res.Count)
	}
	snap := scope.Registry().Snapshot()
	for _, name := range []string{
		"explore_fpset_entries", "explore_fpset_load_permille",
		"explore_arena_words", "explore_arena_peak_words",
		"explore_codec_dict_states", "explore_codec_dict_values",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if ts := rec.Snapshot(); len(ts.Samples) == 0 {
		t.Error("recorder took no samples despite per-level ticks")
	}
	t.Logf("%.2f allocs/config with recorder on, %d recorder samples", perConfig, len(rec.Snapshot().Samples))
}

// TestReachParallelMetricsAggregation checks the shard-aggregated hot-path
// metrics under a real worker pool (run it with -race): the per-chunk stepper
// memo deltas folded by the coordinator must add up exactly — every examined
// transition calls StepPacked once, so memo hits + misses == Result.Steps —
// and the fpSet gauges sampled at the last level must agree with the final
// visited-set size, which on an exhausted space is the configuration count.
func TestReachParallelMetricsAggregation(t *testing.T) {
	forcePool(t)
	c := model.NewConfig(consensus.Flood{}, []model.Value{"0", "1", "1"})
	scope := obs.NewScope(nil)
	res, err := Reach(context.Background(), c, []int{0, 1, 2}, Options{Workers: 4, Obs: scope}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := scope.Registry().Snapshot()
	hits, _ := snap["explore_stepper_memo_hits"].(int64)
	misses, _ := snap["explore_stepper_memo_misses"].(int64)
	if got := hits + misses; got != int64(res.Steps) {
		t.Fatalf("stepper memo hits(%d) + misses(%d) = %d, want Steps = %d; per-chunk deltas were lost or double-counted",
			hits, misses, got, res.Steps)
	}
	if hits == 0 {
		t.Error("stepper memo recorded no hits on an exhaustive search with duplicates")
	}
	rawHits, _ := snap["explore_raw_prefilter_hits"].(int64)
	if rawHits < 0 || rawHits > int64(res.Steps) {
		t.Fatalf("raw prefilter hits = %d, outside [0, Steps=%d]", rawHits, res.Steps)
	}
	if got, _ := snap["explore_fpset_entries"].(int64); got != int64(res.Count) {
		t.Fatalf("explore_fpset_entries = %d, want Count = %d", got, res.Count)
	}
	if load, _ := snap["explore_fpset_load_permille"].(int64); load <= 0 {
		t.Fatalf("explore_fpset_load_permille = %d, want > 0", load)
	}
	probeHist, _ := snap["explore_fpset_probe_len"].(map[string]int64)
	if probeHist["count"] == 0 {
		t.Error("probe-length histogram sampled nothing")
	}
}

// TestSearchMetricsNilScope pins the no-op contract: a search without a
// scope resolves no instruments and every fold/level call is safe.
func TestSearchMetricsNilScope(t *testing.T) {
	m := newSearchMetrics(nil)
	if m.enabled() {
		t.Fatal("nil scope produced enabled metrics")
	}
	m.chunkDeltas(&chunk{rawHits: 3, stepHits: 2, stepMisses: 1})
	m.spillReloaded(time.Millisecond)
	// level() needs a search; nil-instrument calls inside it are exercised
	// by the enabled==false guard at its call site, so nothing more here.
}
