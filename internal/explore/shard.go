package explore

import (
	"encoding/binary"
	"fmt"
)

// Fingerprint-space partitioning for the distributed engine (internal/dist):
// a run sharded over worker processes splits the canonical fingerprint space
// into slices, and every configuration belongs to exactly one slice — the
// one that owns its fingerprint. The partition is a pure function of the
// fingerprint, so two processes never disagree about ownership and a
// reassigned slice is rebuilt from the same membership rule that filled it.

// ShardOf maps a canonical fingerprint to its owning slice in an n-way
// partition. Fingerprints are uniform 128-bit hashes, so a plain modulus
// balances the slices; fp[1] is used because fp[0]'s low bits already pick
// the visited-set stripe and the two should stay independent.
func ShardOf(fp Fingerprint, slices int) int {
	if slices <= 1 {
		return 0
	}
	return int(fp[1] % uint64(slices))
}

// FingerprintBytes is the wire width of one fingerprint: two little-endian
// uint64 words.
const FingerprintBytes = 16

// AppendBinary appends the fingerprint's 16-byte wire encoding to dst.
func (fp Fingerprint) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, fp[0])
	return binary.LittleEndian.AppendUint64(dst, fp[1])
}

// FingerprintFromBytes decodes the 16-byte wire encoding produced by
// AppendBinary.
func FingerprintFromBytes(b []byte) (Fingerprint, error) {
	if len(b) != FingerprintBytes {
		return Fingerprint{}, fmt.Errorf("explore: fingerprint is %d bytes, want %d", len(b), FingerprintBytes)
	}
	return Fingerprint{
		binary.LittleEndian.Uint64(b),
		binary.LittleEndian.Uint64(b[8:]),
	}, nil
}
