package explore

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/model"
)

// visitRec is one visit callback observation, enough to compare two runs
// for exact equivalence.
type visitRec struct {
	ID    int
	Depth int
	Key   string
}

func collectVisits(t *testing.T, c model.Config, p []int, opts Options) (*Result, []visitRec) {
	t.Helper()
	var visits []visitRec
	res, err := Reach(context.Background(), c, p, opts, func(v Visit) bool {
		visits = append(visits, visitRec{ID: v.ID, Depth: v.Depth, Key: v.Config.Key()})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, visits
}

func pathsOf(t *testing.T, res *Result) []model.Path {
	t.Helper()
	paths := make([]model.Path, res.Count)
	for id := 0; id < res.Count; id++ {
		p, ok := res.PathTo(id)
		if !ok {
			t.Fatalf("PathTo(%d) out of range", id)
		}
		paths[id] = p
	}
	return paths
}

// TestReachSnapshotResumeEquivalent freezes a search at a mid-level
// boundary and completes it from the checkpoint: the resumed run must
// visit exactly the not-yet-visited configurations, in the same order with
// the same ids, and end with identical counters and witness paths.
func TestReachSnapshotResumeEquivalent(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"3", "3"})
	p := []int{0, 1}
	opts := Options{Workers: 1}

	fullRes, fullVisits := collectVisits(t, c, p, opts)

	var cp *LevelCheckpoint
	snapOpts := opts
	snapOpts.Snapshot = func(sn *Snapshotter) {
		if cp == nil && sn.Depth() == 2 {
			data, err := sn.Data()
			if err != nil {
				t.Errorf("Data: %v", err)
				return
			}
			cp = data
		}
	}
	snapRes, _ := collectVisits(t, c, p, snapOpts)
	if cp == nil {
		t.Fatal("snapshot hook never captured depth 2")
	}
	if snapRes.Count != fullRes.Count {
		t.Fatalf("snapshotted run Count = %d, want %d", snapRes.Count, fullRes.Count)
	}
	if cp.Count >= fullRes.Count {
		t.Fatalf("checkpoint Count %d not mid-search (full %d)", cp.Count, fullRes.Count)
	}
	if len(cp.Frontier) == 0 || len(cp.Fingerprints) != cp.Count {
		t.Fatalf("checkpoint frontier %d / fingerprints %d / count %d inconsistent",
			len(cp.Frontier), len(cp.Fingerprints), cp.Count)
	}

	resumeOpts := opts
	resumeOpts.ResumeFrom = cp
	resRes, resVisits := collectVisits(t, c, p, resumeOpts)

	if !reflect.DeepEqual(resVisits, fullVisits[cp.Count:]) {
		t.Fatalf("resumed visits diverge:\n got %v\nwant %v", resVisits, fullVisits[cp.Count:])
	}
	if resRes.Count != fullRes.Count || resRes.Depth != fullRes.Depth || resRes.Steps != fullRes.Steps {
		t.Fatalf("resumed result (count %d depth %d steps %d) != full (count %d depth %d steps %d)",
			resRes.Count, resRes.Depth, resRes.Steps, fullRes.Count, fullRes.Depth, fullRes.Steps)
	}
	if !reflect.DeepEqual(pathsOf(t, resRes), pathsOf(t, fullRes)) {
		t.Fatal("resumed witness paths diverge from uninterrupted run")
	}
}

// TestReachSpillEquivalence forces the governor to spill after nearly every
// discovered entry and checks the run is indistinguishable from an
// unspilled one, with no spill files left behind.
func TestReachSpillEquivalence(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"4", "4"})
	p := []int{0, 1}
	base := Options{Workers: 1}

	plainRes, plainVisits := collectVisits(t, c, p, base)

	dir := t.TempDir()
	spillOpts := base
	spillOpts.SpillDir = dir
	spillOpts.SpillBudget = 1 // spill on every add
	spillRes, spillVisits := collectVisits(t, c, p, spillOpts)

	if !reflect.DeepEqual(spillVisits, plainVisits) {
		t.Fatalf("spilled visits diverge:\n got %v\nwant %v", spillVisits, plainVisits)
	}
	if spillRes.Count != plainRes.Count || spillRes.Depth != plainRes.Depth || spillRes.Steps != plainRes.Steps {
		t.Fatalf("spilled result (count %d depth %d steps %d) != plain (count %d depth %d steps %d)",
			spillRes.Count, spillRes.Depth, spillRes.Steps, plainRes.Count, plainRes.Depth, plainRes.Steps)
	}
	if !reflect.DeepEqual(pathsOf(t, spillRes), pathsOf(t, plainRes)) {
		t.Fatal("spilled witness paths diverge")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spill files left behind after completed run", len(entries))
	}
}

// TestReachSpillSnapshotResume snapshots a run whose frontier is partly on
// disk and resumes from it: spilled entries must appear in the checkpoint
// frontier, and the resumed run must match the uninterrupted one.
func TestReachSpillSnapshotResume(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"4", "4"})
	p := []int{0, 1}
	base := Options{Workers: 1}
	fullRes, fullVisits := collectVisits(t, c, p, base)

	var cp *LevelCheckpoint
	spillOpts := base
	spillOpts.SpillDir = t.TempDir()
	spillOpts.SpillBudget = 1
	spillOpts.Snapshot = func(sn *Snapshotter) {
		if cp == nil && sn.Depth() == 3 {
			data, err := sn.Data()
			if err != nil {
				t.Errorf("Data: %v", err)
				return
			}
			cp = data
		}
	}
	collectVisits(t, c, p, spillOpts)
	if cp == nil {
		t.Fatal("snapshot hook never captured depth 3")
	}

	// The resumed run does not need spilling to be on.
	resumeOpts := base
	resumeOpts.ResumeFrom = cp
	resRes, resVisits := collectVisits(t, c, p, resumeOpts)
	if !reflect.DeepEqual(resVisits, fullVisits[cp.Count:]) {
		t.Fatalf("resumed visits diverge:\n got %v\nwant %v", resVisits, fullVisits[cp.Count:])
	}
	if !reflect.DeepEqual(pathsOf(t, resRes), pathsOf(t, fullRes)) {
		t.Fatal("resumed witness paths diverge")
	}
}

// TestResultDepthReported checks the new Depth counter against the known
// longest schedule of the chain machine (budgets sum).
func TestResultDepthReported(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"2", "3"})
	res, err := Reach(context.Background(), c, []int{0, 1}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 5 {
		t.Fatalf("Depth = %d, want 5", res.Depth)
	}
}

// TestRestoreRejectsInconsistentCheckpoint exercises restore's validation.
func TestRestoreRejectsInconsistentCheckpoint(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"2", "2"})
	bad := &LevelCheckpoint{Depth: 1, Count: 5, Nodes: []CheckpointNode{{}}}
	if _, err := Reach(context.Background(), c, []int{0, 1}, Options{ResumeFrom: bad}, nil); err == nil {
		t.Fatal("resume from inconsistent checkpoint succeeded")
	}
}
