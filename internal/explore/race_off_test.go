//go:build !race

package explore

// raceEnabled reports whether the race detector is compiled in; alloc-gate
// tests skip under it because instrumentation inflates alloc counts.
const raceEnabled = false
