package explore

import (
	"context"
	"sync"

	"repro/internal/model"
)

// The level-synchronous engine behind Reach. Each BFS level is split into
// contiguous chunks; workers expand chunks concurrently, racing the shared
// fingerprint set for deduplication and recording the fresh children they
// won in per-chunk slots. The coordinator then merges the chunks in index
// order, so IDs, visit order and cap behaviour are independent of the
// worker count; only the choice of representative among same-level
// duplicates (and hence the exact witness path) can vary between runs,
// which is safe because equal fingerprints mean equal canonical keys.

// chunksPerWorker over-partitions each level so a slow chunk does not
// leave the rest of the pool idle.
const chunksPerWorker = 4

// cancelPollStride is how many transitions a worker expands between polls
// of the context and the soft configuration cap.
const cancelPollStride = 512

// minChunkSize floors the per-chunk work so tiny levels do not drown in
// dispatch overhead (a variable so the equivalence tests can force many
// chunks onto small spaces).
var minChunkSize = 64

// childSlot records one fresh (first-visit) child produced by a worker,
// pending the coordinator's deterministic merge.
type childSlot struct {
	cfg    model.Config
	via    model.Move
	parent int32
}

// chunk is one contiguous slice [lo,hi) of the level being expanded, plus
// the expansion output. Slot buffers persist across levels to keep the
// steady state allocation-free.
type chunk struct {
	lo, hi   int
	slots    []childSlot
	dupSteps int
}

// workerScratch is the per-goroutine reusable state: a moves buffer and a
// streaming key hasher.
type workerScratch struct {
	moves []model.Move
	*hasher
}

func newWorkerScratch() *workerScratch {
	return &workerScratch{hasher: newHasher()}
}

// search carries the state of one Reach call across levels.
type search struct {
	ctx        context.Context
	opts       Options
	p          []int
	maxConfigs int
	visited    *fpSet
	scratch    *workerScratch // coordinator's own scratch, for inline expansion

	level  []levelEntry // the level currently being expanded (read-only to workers)
	chunks []chunk

	workCh  chan *chunk
	levelWG sync.WaitGroup
	wg      sync.WaitGroup
	started bool
}

// expandLevel expands every entry of level and returns the populated
// chunks in their deterministic index order. Small levels (or Workers: 1)
// are expanded inline on the calling goroutine; larger ones fan out to the
// lazily started worker pool.
func (s *search) expandLevel(level []levelEntry) []chunk {
	s.level = level
	workers := s.opts.workers()
	if workers <= 1 || len(level) < parallelThreshold {
		s.ensureChunks(1)
		ch := &s.chunks[0]
		ch.lo, ch.hi = 0, len(level)
		s.expandRange(ch, s.scratch)
		return s.chunks[:1]
	}
	if !s.started {
		s.startWorkers(workers)
	}
	chunkSize := (len(level) + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if chunkSize < minChunkSize {
		chunkSize = minChunkSize
	}
	n := (len(level) + chunkSize - 1) / chunkSize
	s.ensureChunks(n)
	s.levelWG.Add(n)
	for i := 0; i < n; i++ {
		ch := &s.chunks[i]
		ch.lo = i * chunkSize
		ch.hi = min(ch.lo+chunkSize, len(level))
		s.workCh <- ch
	}
	s.levelWG.Wait()
	return s.chunks[:n]
}

// expandRange expands the level entries in [ch.lo, ch.hi), racing the
// shared visited set. It bails out early when the context is cancelled or
// the visited set has already overflowed the configuration cap; both
// conditions guarantee the coordinator caps the result, so truncated
// output is never mistaken for exhaustion.
func (s *search) expandRange(ch *chunk, ws *workerScratch) {
	ch.slots = ch.slots[:0]
	ch.dupSteps = 0
	steps := 0
	for i := ch.lo; i < ch.hi; i++ {
		ent := &s.level[i]
		ws.moves = AppendMoves(ws.moves[:0], ent.cfg, s.p)
		for _, m := range ws.moves {
			steps++
			if steps%cancelPollStride == 0 {
				if s.ctx.Err() != nil || s.visited.Len() > s.maxConfigs {
					return
				}
			}
			child := Apply(ent.cfg, m)
			if s.visited.Add(ws.fingerprint(&s.opts, child)) {
				ch.slots = append(ch.slots, childSlot{cfg: child, via: m, parent: ent.id})
			} else {
				ch.dupSteps++
			}
		}
	}
}

func (s *search) ensureChunks(n int) {
	for len(s.chunks) < n {
		s.chunks = append(s.chunks, chunk{})
	}
}

func (s *search) startWorkers(n int) {
	s.workCh = make(chan *chunk, n*chunksPerWorker)
	s.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer s.wg.Done()
			ws := newWorkerScratch()
			for ch := range s.workCh {
				s.expandRange(ch, ws)
				s.levelWG.Done()
			}
		}()
	}
	s.started = true
}

// stopWorkers shuts the pool down; safe to call whether or not it started.
func (s *search) stopWorkers() {
	if s.started {
		close(s.workCh)
		s.wg.Wait()
	}
}
