package explore

import (
	"context"
	"sync"

	"repro/internal/model"
)

// The level-synchronous engine behind Reach. Each BFS level is split into
// contiguous chunks; workers expand chunks concurrently, racing the shared
// fingerprint set for deduplication and recording the fresh children they
// won in per-chunk slots. The coordinator then merges the chunks in index
// order, so IDs, visit order and cap behaviour are independent of the
// worker count; only the choice of representative among same-level
// duplicates (and hence the exact witness path) can vary between runs,
// which is safe because equal fingerprints mean equal canonical keys.
//
// In the default packed mode, workers step into per-goroutine scratch
// (model.StepInto) and encode each surviving child as a fixed-width packed
// record by patching its parent's record — one state field, plus one value
// field when the parent was write-poised — so the per-transition cost is a
// scratch step, a streamed fingerprint and at most two dictionary lookups,
// with no per-child slice allocations. The reference mode (Options.
// legacyFrontier) keeps the original Apply-per-transition path; the
// equivalence tests drive both and require identical results.

// chunksPerWorker over-partitions each level so a slow chunk does not
// leave the rest of the pool idle.
const chunksPerWorker = 4

// cancelPollStride is how many transitions a worker expands between polls
// of the context and the soft configuration cap.
const cancelPollStride = 512

// minChunkSize floors the per-chunk work so tiny levels do not drown in
// dispatch overhead (a variable so the equivalence tests can force many
// chunks onto small spaces).
var minChunkSize = 64

// childSlot records one fresh (first-visit) child produced by a worker,
// pending the coordinator's deterministic merge. via is the connecting
// move in its model.PackMove encoding — the form the node forest retains.
type childSlot struct {
	cfg    model.Config
	via    uint32
	parent int32
}

// chunk is one contiguous slice [lo,hi) of the level being expanded, plus
// the expansion output. Slot and arena buffers persist across levels to
// keep the steady state allocation-free. In packed mode words holds the
// packed record of slots[i] at [i*stride, (i+1)*stride) and slab owns the
// slot configurations until the coordinator has merged them.
type chunk struct {
	lo, hi   int
	slots    []childSlot
	words    []uint64
	slab     model.ConfigSlab
	dupSteps int
	err      error
	// Per-chunk instrumentation deltas, folded into per-level metrics by
	// the coordinator after levelWG.Wait (so they need no atomics): rawHits
	// counts transitions screened out by the rawSeen pre-filter (a subset
	// of dupSteps), stepHits/stepMisses the stepper memo outcomes.
	rawHits    int
	stepHits   uint64
	stepMisses uint64
}

// workerScratch is the per-goroutine reusable state: a moves buffer (legacy
// mode), the packed transition engine with its memos and child buffers
// (packed mode), and a streaming key hasher. The packed pieces are built
// lazily on the first packed chunk the goroutine expands.
type workerScratch struct {
	moves      []model.Move
	stepper    *model.PackedStepper
	childWords []uint64
	ustates    []model.State
	uregs      []model.Value
	*hasher
}

func newWorkerScratch() *workerScratch {
	return &workerScratch{hasher: newHasher()}
}

func (ws *workerScratch) initPacked(codec *model.PackedCodec) {
	if ws.stepper != nil {
		return
	}
	ws.stepper = codec.NewStepper()
	ws.childWords = make([]uint64, codec.Words())
	ws.ustates = make([]model.State, codec.NumProcesses())
	ws.uregs = make([]model.Value, codec.NumRegisters())
}

// search carries the state of one Reach call across levels.
type search struct {
	ctx        context.Context
	opts       Options
	p          []int
	maxConfigs int
	visited    *fpSet
	// rawSeen pre-filters packed transitions by the hash of the packed
	// record itself, skipping the canonical key stream for transitions that
	// reproduce an already-seen record verbatim. It is a pure cache over
	// instance-scoped dictionary ids: never persisted in checkpoints (a
	// resumed search just rebuilds it) and never mixed with visited.
	rawSeen *fpSet
	scratch *workerScratch // coordinator's own scratch, for inline expansion
	metrics searchMetrics  // flight-recorder instruments, resolved once per Reach

	// codec is the packed-configuration dictionary shared by all workers;
	// nil in the legacy reference mode. stride is codec.Words().
	codec  *model.PackedCodec
	stride int

	level  []levelEntry // the level currently being expanded (read-only to workers)
	chunks []chunk

	workCh  chan *chunk
	levelWG sync.WaitGroup
	wg      sync.WaitGroup
	started bool
}

// expandLevel expands every entry of level and returns the populated
// chunks in their deterministic index order. Small levels (or Workers: 1)
// are expanded inline on the calling goroutine; larger ones fan out to the
// lazily started worker pool.
func (s *search) expandLevel(level []levelEntry) []chunk {
	s.level = level
	workers := s.opts.workers()
	if workers <= 1 || len(level) < parallelThreshold {
		s.ensureChunks(1)
		ch := &s.chunks[0]
		ch.lo, ch.hi = 0, len(level)
		s.expandRange(ch, s.scratch)
		return s.chunks[:1]
	}
	if !s.started {
		s.startWorkers(workers)
	}
	chunkSize := (len(level) + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if chunkSize < minChunkSize {
		chunkSize = minChunkSize
	}
	n := (len(level) + chunkSize - 1) / chunkSize
	s.ensureChunks(n)
	s.levelWG.Add(n)
	for i := 0; i < n; i++ {
		ch := &s.chunks[i]
		ch.lo = i * chunkSize
		ch.hi = min(ch.lo+chunkSize, len(level))
		s.workCh <- ch
	}
	s.levelWG.Wait()
	return s.chunks[:n]
}

// expandRange expands the level entries in [ch.lo, ch.hi), racing the
// shared visited set. It bails out early when the context is cancelled or
// the visited set has already overflowed the configuration cap; both
// conditions guarantee the coordinator caps the result, so truncated
// output is never mistaken for exhaustion. A packing failure (dictionary
// capacity) is parked in ch.err for the coordinator.
func (s *search) expandRange(ch *chunk, ws *workerScratch) {
	// The previous level's slots were merged before this chunk was
	// redispatched, so retiring the slab here cannot orphan a live clone.
	ch.slots = ch.slots[:0]
	ch.words = ch.words[:0]
	ch.slab.Reset()
	ch.dupSteps = 0
	ch.err = nil
	ch.rawHits = 0
	ch.stepHits, ch.stepMisses = 0, 0
	if s.codec != nil {
		s.expandRangePacked(ch, ws)
		return
	}
	steps := 0
	for i := ch.lo; i < ch.hi; i++ {
		ent := &s.level[i]
		ws.moves = AppendMoves(ws.moves[:0], ent.cfg, s.p)
		for _, m := range ws.moves {
			steps++
			if steps%cancelPollStride == 0 {
				if s.ctx.Err() != nil || s.visited.Len() > s.maxConfigs {
					return
				}
			}
			child := Apply(ent.cfg, m)
			if !s.visited.Add(ws.fingerprint(&s.opts, child)) {
				ch.dupSteps++
				continue
			}
			via, err := model.PackMove(m)
			if err != nil {
				ch.err = err
				return
			}
			ch.slots = append(ch.slots, childSlot{cfg: child, via: via, parent: ent.id})
		}
	}
}

// expandRangePacked is the packed-mode hot loop. It never touches a
// model.Config on the fast path: moves are enumerated from the parent's
// interned state ids, transitions run through the per-worker stepper memo
// directly on the packed words, and a raw-identity pre-filter (a hash of
// the packed record itself) screens out transitions that rebuild an
// already-produced record before the canonical key is ever streamed. Only
// raw-fresh children are unpacked and fingerprinted canonically.
//
// The pre-filter is a pure shortcut: packed records are exact, so a
// raw-duplicate's canonical fingerprint was already added to the visited
// set when its identical twin was processed — skipping it cannot change
// the visited set, the visit sequence or the counters.
func (s *search) expandRangePacked(ch *chunk, ws *workerScratch) {
	ws.initPacked(s.codec)
	h0, m0 := ws.stepper.Stats()
	defer func() {
		h, m := ws.stepper.Stats()
		ch.stepHits, ch.stepMisses = h-h0, m-m0
	}()
	steps := 0
	for i := ch.lo; i < ch.hi; i++ {
		ent := &s.level[i]
		for _, pid := range s.p {
			kind, _ := ws.stepper.Op(s.codec.StateID(ent.words, pid))
			if kind == model.OpDecide {
				continue
			}
			outcomes := 1
			if kind == model.OpCoin {
				outcomes = 2
			}
			for o := 0; o < outcomes; o++ {
				steps++
				if steps%cancelPollStride == 0 {
					if s.ctx.Err() != nil || s.visited.Len() > s.maxConfigs {
						return
					}
				}
				coin := model.Bottom
				if kind == model.OpCoin {
					coin = coinOutcomes[o]
				}
				if err := ws.stepper.StepPacked(ws.childWords, ent.words, pid, coin); err != nil {
					ch.err = err
					return
				}
				if !s.rawSeen.Add(mixWords(ws.childWords)) {
					ch.rawHits++
					ch.dupSteps++
					continue
				}
				child, err := s.codec.UnpackInto(ws.childWords, ws.ustates, ws.uregs)
				if err != nil {
					ch.err = err
					return
				}
				if !s.visited.Add(ws.fingerprint(&s.opts, child)) {
					ch.dupSteps++
					continue
				}
				via, err := model.PackMove(model.Move{Pid: pid, Coin: coin})
				if err != nil {
					ch.err = err
					return
				}
				ch.words = append(ch.words, ws.childWords...)
				ch.slots = append(ch.slots, childSlot{cfg: ch.slab.Clone(child), via: via, parent: ent.id})
			}
		}
	}
}

// coinOutcomes lists the two coin results in the order AppendMoves emits
// them, so packed and legacy mode expand transitions identically.
var coinOutcomes = [2]model.Value{"0", "1"}

func (s *search) ensureChunks(n int) {
	for len(s.chunks) < n {
		s.chunks = append(s.chunks, chunk{})
	}
}

func (s *search) startWorkers(n int) {
	s.workCh = make(chan *chunk, n*chunksPerWorker)
	s.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer s.wg.Done()
			ws := newWorkerScratch()
			for ch := range s.workCh {
				s.expandRange(ch, ws)
				s.levelWG.Done()
			}
		}()
	}
	s.started = true
}

// stopWorkers shuts the pool down; safe to call whether or not it started.
func (s *search) stopWorkers() {
	if s.started {
		close(s.workCh)
		s.wg.Wait()
	}
}
