package explore

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
)

// forcePool shrinks the fan-out thresholds so even the tiny state spaces of
// test protocols exercise the worker pool and multi-chunk merge paths, and
// restores them on cleanup.
func forcePool(t *testing.T) {
	t.Helper()
	oldThreshold, oldChunk := parallelThreshold, minChunkSize
	parallelThreshold, minChunkSize = 2, 1
	t.Cleanup(func() { parallelThreshold, minChunkSize = oldThreshold, oldChunk })
}

// equivalenceCase is one protocol instance for the parallel/sequential
// equivalence property.
type equivalenceCase struct {
	name   string
	config model.Config
	pids   []int
	opts   Options
	// capped marks cases whose space intentionally overflows MaxConfigs:
	// Count must still be deterministic (the merge caps at exactly the
	// same configuration for any worker count), but Steps may differ with
	// where the workers were truncated.
	capped bool
}

func equivalenceCases() []equivalenceCase {
	disk := consensus.DiskRace{}
	return []equivalenceCase{
		{
			name:   "chain",
			config: model.NewConfig(chainMachine{}, []model.Value{"3", "4"}),
			pids:   []int{0, 1},
		},
		{
			name:   "coin",
			config: model.NewConfig(coinMachine{}, []model.Value{"", ""}),
			pids:   []int{0, 1},
		},
		{
			name:   "flood3",
			config: model.NewConfig(consensus.Flood{}, []model.Value{"0", "1", "1"}),
			pids:   []int{0, 1, 2},
		},
		{
			name:   "coinflood2",
			config: model.NewConfig(consensus.CoinFlood{}, []model.Value{"0", "1"}),
			pids:   []int{0, 1},
		},
		{
			name:   "diskrace3-pair",
			config: model.NewConfig(disk, []model.Value{"0", "1", "1"}),
			pids:   []int{0, 1},
			opts:   Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo, MaxConfigs: 60000},
		},
		{
			name:   "diskrace3-capped",
			config: model.NewConfig(disk, []model.Value{"0", "1", "1"}),
			pids:   []int{0, 1, 2},
			opts:   Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo, MaxConfigs: 3000},
			capped: true,
		},
	}
}

// TestParallelSequentialEquivalence is the engine's core soundness
// property: for every protocol, Workers:1 and Workers:N visit exactly the
// same number of configurations (per the deterministic merge), examine the
// same number of transitions when the space is exhausted, and every
// recorded ID yields a witness path whose replay re-derives a configuration
// with the recorded canonical key. Run it under -race to also check the
// worker pool's synchronisation.
func TestParallelSequentialEquivalence(t *testing.T) {
	forcePool(t)
	for _, tc := range equivalenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			type run struct {
				res  *Result
				keys []string
				err  error
			}
			runWith := func(workers int) run {
				opts := tc.opts
				opts.Workers = workers
				var keys []string
				res, err := Reach(context.Background(), tc.config, tc.pids, opts, func(v Visit) bool {
					if v.ID != len(keys) {
						t.Fatalf("visit IDs not sequential: got %d at visit %d", v.ID, len(keys))
					}
					keys = append(keys, opts.ConfigKey(v.Config))
					return true
				})
				if tc.capped {
					if !res.Capped {
						t.Fatalf("workers=%d: expected the %d-config cap to bind", workers, opts.MaxConfigs)
					}
				} else if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return run{res: res, keys: keys}
			}
			seq := runWith(1)
			for _, workers := range []int{2, 4, 7} {
				par := runWith(workers)
				if par.res.Count != seq.res.Count {
					t.Errorf("workers=%d: Count = %d, sequential = %d", workers, par.res.Count, seq.res.Count)
				}
				if !tc.capped && par.res.Steps != seq.res.Steps {
					t.Errorf("workers=%d: Steps = %d, sequential = %d", workers, par.res.Steps, seq.res.Steps)
				}
				// Witness validity: replaying PathTo(id) must land on a
				// configuration with the canonical key recorded for id.
				// (The key may differ from the sequential run's key for
				// the same id — same-level duplicates may elect a
				// different representative — but it must be internally
				// consistent.)
				opts := tc.opts
				for id, key := range par.keys {
					path, ok := par.res.PathTo(id)
					if !ok {
						t.Fatalf("workers=%d: PathTo(%d) failed", workers, id)
					}
					got := opts.ConfigKey(model.RunPath(tc.config, path))
					if got != key {
						t.Fatalf("workers=%d: replay of id %d lands on %q, visited %q", workers, id, got, key)
					}
				}
			}
		})
	}
}

// TestParallelSequentialEquivalenceDefaultThresholds repeats the count
// check without the shrunken thresholds, so the inline-small-level path and
// the real cut-over are covered too.
func TestParallelSequentialEquivalenceDefaultThresholds(t *testing.T) {
	disk := consensus.DiskRace{}
	c := model.NewConfig(disk, []model.Value{"0", "1", "1"})
	opts := Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo, MaxConfigs: 60000}
	counts := make(map[int]int)
	for _, workers := range []int{1, 4} {
		o := opts
		o.Workers = workers
		res, err := Reach(context.Background(), c, []int{0, 1}, o, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		counts[workers] = res.Count
	}
	if counts[1] != counts[4] {
		t.Fatalf("counts diverge across worker counts: %v", counts)
	}
}

// TestStreamingKeysMatchStringKeys pins the contract that lets the hot path
// skip key materialisation: for every reachable configuration of every seed
// protocol, hashing the streamed key must equal hashing the reference
// string key.
func TestStreamingKeysMatchStringKeys(t *testing.T) {
	for _, tc := range equivalenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			hs := newHasher()
			checked := 0
			_, err := Reach(context.Background(), tc.config, tc.pids, opts, func(v Visit) bool {
				want := fingerprintOf(opts.ConfigKey(v.Config))
				if got := hs.fingerprint(&opts, v.Config); got != want {
					t.Fatalf("config %d: streamed fingerprint %x != string fingerprint %x (key %q)",
						v.ID, got, want, opts.ConfigKey(v.Config))
				}
				checked++
				return checked < 5000
			})
			if err != nil && !errors.Is(err, ErrCapped) {
				t.Fatal(err)
			}
		})
	}
}

// TestReachFrontierBoundedLiveHeap is the regression test for frontier
// compaction: on a deep linear protocol (one process, one configuration
// per level) the level-based frontier must stay at a single entry, and the
// whole search must cost a small constant number of allocations per
// configuration — retaining a capacity-bloated queue or allocating fresh
// per-level buffers would blow the bound immediately.
func TestReachFrontierBoundedLiveHeap(t *testing.T) {
	const depth = 2000
	c := model.NewConfig(chainMachine{}, []model.Value{model.Value(fmt.Sprintf("%d", depth))})
	var res *Result
	allocs := testing.AllocsPerRun(3, func() {
		var err error
		res, err = Reach(context.Background(), c, []int{0}, Options{Workers: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	if res.Count != depth+1 {
		t.Fatalf("Count = %d, want %d", res.Count, depth+1)
	}
	if res.PeakFrontier != 1 {
		t.Fatalf("PeakFrontier = %d, want 1 on a linear protocol", res.PeakFrontier)
	}
	perConfig := allocs / float64(res.Count)
	if perConfig > 16 {
		t.Fatalf("%.1f allocations per configuration (total %.0f for %d configs); frontier or key handling is allocating again",
			perConfig, allocs, res.Count)
	}
	t.Logf("%.2f allocs/config over %d configs, peak frontier %d", perConfig, res.Count, res.PeakFrontier)
}

// TestReachPeakFrontierReported sanity-checks PeakFrontier on a branching
// space: two independent coin flippers have 4 leaf configurations, so some
// level must hold more than one entry.
func TestReachPeakFrontierReported(t *testing.T) {
	c := model.NewConfig(coinMachine{}, []model.Value{"", ""})
	res, err := Reach(context.Background(), c, []int{0, 1}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakFrontier < 2 {
		t.Fatalf("PeakFrontier = %d, want >= 2", res.PeakFrontier)
	}
}

// TestReachEnabledScopeKeepsAllocBound re-runs the live-heap regression
// with a metrics-enabled observability scope attached: instrumentation is
// per-level, so even on the pathological one-config-per-level chain the
// allocation budget must hold. The counters it leaves behind double as a
// correctness check of the per-level accounting.
func TestReachEnabledScopeKeepsAllocBound(t *testing.T) {
	const depth = 2000
	c := model.NewConfig(chainMachine{}, []model.Value{model.Value(fmt.Sprintf("%d", depth))})
	scope := obs.NewScope(nil)
	var res *Result
	allocs := testing.AllocsPerRun(3, func() {
		var err error
		res, err = Reach(context.Background(), c, []int{0}, Options{Workers: 1, Obs: scope}, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	perConfig := allocs / float64(res.Count)
	if perConfig > 16 {
		t.Fatalf("%.1f allocations per configuration with observability on (total %.0f for %d configs); instrumentation has entered the per-configuration path",
			perConfig, allocs, res.Count)
	}
	snap := scope.Registry().Snapshot()
	// 4 runs of depth+1 configurations each (the initial configuration is
	// not a level's frontier entry, so each run accounts depth of them).
	if got := snap["explore_configs"]; got != int64(4*depth) {
		t.Fatalf("explore_configs = %v, want %d", got, 4*depth)
	}
	// The deepest recorded level is the empty one past the chain's end.
	if got := snap["explore_depth"]; got != int64(depth+1) {
		t.Fatalf("explore_depth = %v, want %d", got, depth+1)
	}
	t.Logf("%.2f allocs/config with metrics scope enabled", perConfig)
}
