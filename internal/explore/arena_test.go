package explore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
)

// TestArenaMatchesLegacyFrontier is the packed hot path's equivalence
// property: on every zoo protocol — DiskRace n=3 and a deep linear chain
// included — the arena frontier (packed codec, stepper, raw pre-dedup)
// and the legacy Config frontier must produce identical Counts, Steps,
// visit IDs, canonical keys per ID, and visited fingerprint sets, for
// both a single worker and a parallel pool. Run under -race it also
// checks the arena path's synchronisation.
func TestArenaMatchesLegacyFrontier(t *testing.T) {
	forcePool(t)
	cases := equivalenceCases()
	cases = append(cases, equivalenceCase{
		name:   "deep-chain",
		config: model.NewConfig(chainMachine{}, []model.Value{"500"}),
		pids:   []int{0},
	})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type run struct {
				res  *Result
				keys []string
			}
			runWith := func(workers int, legacy bool) run {
				opts := tc.opts
				opts.Workers = workers
				opts.legacyFrontier = legacy
				var keys []string
				res, err := Reach(context.Background(), tc.config, tc.pids, opts, func(v Visit) bool {
					if v.ID != len(keys) {
						t.Fatalf("visit IDs not sequential: got %d at visit %d", v.ID, len(keys))
					}
					keys = append(keys, opts.ConfigKey(v.Config))
					return true
				})
				if err != nil && !tc.capped {
					t.Fatalf("workers=%d legacy=%v: %v", workers, legacy, err)
				}
				return run{res: res, keys: keys}
			}
			for _, workers := range []int{1, 4} {
				legacy := runWith(workers, true)
				packed := runWith(workers, false)
				if packed.res.Count != legacy.res.Count {
					t.Errorf("workers=%d: packed Count=%d, legacy=%d", workers, packed.res.Count, legacy.res.Count)
				}
				if !tc.capped && packed.res.Steps != legacy.res.Steps {
					t.Errorf("workers=%d: packed Steps=%d, legacy=%d", workers, packed.res.Steps, legacy.res.Steps)
				}
				if len(packed.keys) != len(legacy.keys) {
					t.Fatalf("workers=%d: packed visited %d configs, legacy %d", workers, len(packed.keys), len(legacy.keys))
				}
				if workers == 1 {
					// A single worker is fully deterministic: the packed
					// path must reproduce the legacy visit sequence id
					// for id, key for key.
					for id := range packed.keys {
						if packed.keys[id] != legacy.keys[id] {
							t.Fatalf("workers=%d: id %d key %q (packed) != %q (legacy)",
								workers, id, packed.keys[id], legacy.keys[id])
						}
					}
				}
				if tc.capped && workers > 1 {
					// Same-level duplicate election races across worker
					// chunks, so a mid-level cap may truncate a different
					// tail; only the count is comparable (checked above).
					continue
				}
				// The visited fingerprint set — what dedup and checkpoints
				// actually rely on — is deterministic per level even when
				// representative election races: compare it sorted.
				fps := func(keys []string) []Fingerprint {
					out := make([]Fingerprint, len(keys))
					for i, k := range keys {
						out[i] = fingerprintOf(k)
					}
					sort.Slice(out, func(a, b int) bool {
						if out[a][0] != out[b][0] {
							return out[a][0] < out[b][0]
						}
						return out[a][1] < out[b][1]
					})
					return out
				}
				pf, lf := fps(packed.keys), fps(legacy.keys)
				for i := range pf {
					if pf[i] != lf[i] {
						t.Fatalf("workers=%d: fingerprint sets diverge at %d", workers, i)
					}
				}
			}
		})
	}
}

// TestArenaPathsReplay: witness paths recorded by the packed path must
// replay to configurations with the recorded canonical keys, exactly like
// the legacy path's (covering the via/parent bookkeeping in the arena
// merge).
func TestArenaPathsReplay(t *testing.T) {
	forcePool(t)
	disk := consensus.DiskRace{}
	c := model.NewConfig(disk, []model.Value{"0", "1", "1"})
	opts := Options{KeyFn: disk.CanonicalKey, KeyTo: disk.CanonicalKeyTo, MaxConfigs: 4000, Workers: 4}
	var keys []string
	res, err := Reach(context.Background(), c, []int{0, 1, 2}, opts, func(v Visit) bool {
		keys = append(keys, opts.ConfigKey(v.Config))
		return true
	})
	if err != nil && !errors.Is(err, ErrCapped) {
		t.Fatal(err)
	}
	for id, key := range keys {
		path, ok := res.PathTo(id)
		if !ok {
			t.Fatalf("PathTo(%d) failed", id)
		}
		if got := opts.ConfigKey(model.RunPath(c, path)); got != key {
			t.Fatalf("replay of id %d lands on %q, visited %q", id, got, key)
		}
	}
}

// TestArenaSpillMatchesLegacySpill drives both frontier representations
// through the spill path (budget 1 spills every batch) and demands the
// identical visit sequence: the packed spill chunks must round-trip
// through disk exactly like the legacy Config chunks.
func TestArenaSpillMatchesLegacySpill(t *testing.T) {
	c := model.NewConfig(chainMachine{}, []model.Value{"4", "4"})
	p := []int{0, 1}
	run := func(legacy bool) []string {
		opts := Options{Workers: 1, SpillDir: t.TempDir(), SpillBudget: 1}
		opts.legacyFrontier = legacy
		var keys []string
		if _, err := Reach(context.Background(), c, p, opts, func(v Visit) bool {
			keys = append(keys, opts.ConfigKey(v.Config))
			return true
		}); err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return keys
	}
	legacy, packed := run(true), run(false)
	if len(legacy) != len(packed) {
		t.Fatalf("packed spill visited %d configs, legacy %d", len(packed), len(legacy))
	}
	for i := range legacy {
		if legacy[i] != packed[i] {
			t.Fatalf("visit %d: packed %q, legacy %q", i, packed[i], legacy[i])
		}
	}
}

// TestMixWordsDistinctness hammers the packed-record hash with structured
// near-identical inputs (the regime raw pre-dedup lives in: records
// differing in a couple of dictionary ids) and demands zero collisions.
func TestMixWordsDistinctness(t *testing.T) {
	seen := make(map[Fingerprint][]uint64, 400000)
	check := func(ws []uint64) {
		fp := mixWords(ws)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("mixWords collision between %v and %v", prev, ws)
		}
		seen[fp] = append([]uint64{}, ws...)
	}
	for i := uint64(0); i < 500; i++ {
		for j := uint64(0); j < 500; j++ {
			check([]uint64{i, j<<32 | i})
		}
	}
	// Length must be part of the digest: a record extended by a zero word
	// encodes a different configuration shape.
	check([]uint64{1, 2, 0})
	check([]uint64{1, 2, 0, 0})
	check([]uint64{0})
	check([]uint64{})
}

// TestFNVReferenceFingerprintDistinctness keeps the retired FNV-128
// reference honest (it remains the cross-check implementation for the
// wyhash-style mixer): same structured-key sweep, zero collisions.
func TestFNVReferenceFingerprintDistinctness(t *testing.T) {
	seen := make(map[Fingerprint]string, 100000)
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("D%d|cfg|%d", i%7, i)
		fp := fingerprintFNV128(key)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("FNV collision between %q and %q", prev, key)
		}
		seen[fp] = key
	}
}

// TestFPSetOpenAddressing covers the open-addressed visited set directly:
// duplicate rejection, the out-of-band zero fingerprint, growth across the
// 128-slot floor, Len accounting, and dump completeness — for both the
// striped and the lock-free single-goroutine variants.
func TestFPSetOpenAddressing(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *fpSet
	}{
		{"locked", newFPSet},
		{"local", newFPSetLocal},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			rng := rand.New(rand.NewSource(42))
			const n = 50000
			want := make(map[Fingerprint]bool, n+1)
			want[Fingerprint{}] = true
			if !s.Add(Fingerprint{}) {
				t.Fatal("zero fingerprint rejected on first insert")
			}
			if s.Add(Fingerprint{}) {
				t.Fatal("zero fingerprint accepted twice")
			}
			for len(want) < n+1 {
				fp := Fingerprint{rng.Uint64(), rng.Uint64()}
				if want[fp] {
					continue
				}
				want[fp] = true
				if !s.Add(fp) {
					t.Fatalf("fresh fingerprint %x rejected", fp)
				}
				if s.Add(fp) {
					t.Fatalf("duplicate fingerprint %x accepted", fp)
				}
			}
			if s.Len() != n+1 {
				t.Fatalf("Len = %d, want %d", s.Len(), n+1)
			}
			got := s.dump()
			if len(got) != n+1 {
				t.Fatalf("dump returned %d fingerprints, want %d", len(got), n+1)
			}
			for _, fp := range got {
				if !want[fp] {
					t.Fatalf("dump invented fingerprint %x", fp)
				}
				delete(want, fp)
			}
			if len(want) != 0 {
				t.Fatalf("dump lost %d fingerprints", len(want))
			}
		})
	}
}

// TestFPSetConcurrentAdds races many goroutines over one striped set: each
// fingerprint must be won exactly once however the Adds interleave.
func TestFPSetConcurrentAdds(t *testing.T) {
	s := newFPSet()
	const (
		goroutines = 8
		perG       = 20000
	)
	wins := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			won := 0
			for i := 0; i < perG; i++ {
				// All goroutines insert the same universe of fingerprints.
				fp := mixWords([]uint64{uint64(i), uint64(i) * 3})
				if s.Add(fp) {
					won++
				}
			}
			wins <- won
		}()
	}
	total := 0
	for g := 0; g < goroutines; g++ {
		total += <-wins
	}
	if total != perG {
		t.Fatalf("distinct fingerprints won %d times total, want exactly %d", total, perG)
	}
	if s.Len() != perG {
		t.Fatalf("Len = %d, want %d", s.Len(), perG)
	}
}
