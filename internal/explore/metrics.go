package explore

import (
	"time"

	"repro/internal/obs"
)

// searchMetrics are the flight-recorder instruments of one Reach call:
// every pointer is resolved once at search start (nil scope → nil, no-op
// instruments, zero map lookups later) and fed once per BFS level from the
// per-chunk deltas the coordinator folds after the level barrier. Nothing
// here runs per configuration — the allocation-regression tests hold the
// enabled-scope packed path to the same ≤4 allocs/config gate as the
// disabled one.
type searchMetrics struct {
	rawHits    *obs.Counter // rawSeen pre-filter screens (subset of dedup hits)
	stepHits   *obs.Counter // stepper memo hits across all workers
	stepMisses *obs.Counter // stepper memo misses (slow-path resolves)

	arenaWords *obs.Gauge   // next-frontier arena occupancy, in uint64 words
	arenaPeak  *obs.Gauge   // its high-water mark across the search
	mergeBytes *obs.Counter // bytes copied merging chunk records into arenas

	fpEntries *obs.Gauge     // visited-set fingerprints
	fpLoad    *obs.Gauge     // visited-set load factor, in permille
	fpProbe   *obs.Histogram // sampled linear-probe displacement per lookup

	dictStates   *obs.Gauge     // codec interned state count
	dictVals     *obs.Gauge     // codec interned value count
	dictStateSh  *obs.Gauge     // fullest state key-map shard (balance check)
	dictValSh    *obs.Gauge     // fullest value key-map shard
	spillReload  *obs.Histogram // per-chunk spill replay latency, micros
	spillReloads *obs.Counter   // spilled chunks reloaded
}

// ProbeLenBounds are the fixed buckets of the explore_fpset_probe_len
// histogram: displacement 0 is a home-slot hit; the tail marks clustering.
var ProbeLenBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64}

// SpillReloadBoundsMicros are the fixed buckets of the
// explore_spill_reload_us histogram.
var SpillReloadBoundsMicros = []int64{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000}

// fpSampleSlotsPerShard bounds the probe-displacement sample taken from
// each visited-set stripe at a level boundary, so the sampling cost stays
// O(1) per level however large the set grows.
const fpSampleSlotsPerShard = 128

// newSearchMetrics resolves the instruments from s (nil-safe: a nil scope
// yields all-nil, no-op instruments).
func newSearchMetrics(s *obs.Scope) searchMetrics {
	return searchMetrics{
		rawHits:      s.Counter("explore_raw_prefilter_hits"),
		stepHits:     s.Counter("explore_stepper_memo_hits"),
		stepMisses:   s.Counter("explore_stepper_memo_misses"),
		arenaWords:   s.Gauge("explore_arena_words"),
		arenaPeak:    s.Gauge("explore_arena_peak_words"),
		mergeBytes:   s.Counter("explore_arena_merge_bytes"),
		fpEntries:    s.Gauge("explore_fpset_entries"),
		fpLoad:       s.Gauge("explore_fpset_load_permille"),
		fpProbe:      s.Histogram("explore_fpset_probe_len", ProbeLenBounds),
		dictStates:   s.Gauge("explore_codec_dict_states"),
		dictVals:     s.Gauge("explore_codec_dict_values"),
		dictStateSh:  s.Gauge("explore_codec_state_shard_max"),
		dictValSh:    s.Gauge("explore_codec_value_shard_max"),
		spillReload:  s.Histogram("explore_spill_reload_us", SpillReloadBoundsMicros),
		spillReloads: s.Counter("explore_spill_reloads"),
	}
}

// chunkDeltas folds one merged chunk's instrumentation deltas. Called by
// the coordinator after the level barrier, so the plain chunk fields are
// safely visible.
func (m *searchMetrics) chunkDeltas(ch *chunk) {
	m.rawHits.Add(int64(ch.rawHits))
	m.stepHits.Add(int64(ch.stepHits))
	m.stepMisses.Add(int64(ch.stepMisses))
}

// level samples the slow-moving structures once per completed BFS level:
// visited-set load and probe lengths, arena occupancy, codec dictionaries.
func (m *searchMetrics) level(s *search, next *frontier) {
	n, slots := s.visited.stats(fpSampleSlotsPerShard, m.fpProbe)
	m.fpEntries.Set(int64(n))
	if slots > 0 {
		m.fpLoad.Set(int64(n) * 1000 / int64(slots))
	}
	words := int64(len(next.words))
	m.arenaWords.Set(words)
	m.arenaPeak.Max(words)
	m.mergeBytes.Add(words * 8)
	if s.codec != nil {
		states, vals, maxSS, maxVS := s.codec.DictStats()
		m.dictStates.Set(int64(states))
		m.dictVals.Set(int64(vals))
		m.dictStateSh.Set(int64(maxSS))
		m.dictValSh.Set(int64(maxVS))
	}
}

// spillReloaded records one spilled chunk's replay-from-disk latency.
func (m *searchMetrics) spillReloaded(d time.Duration) {
	m.spillReloads.Add(1)
	m.spillReload.Observe(d.Microseconds())
}

// enabled reports whether the metrics were resolved from a live scope (the
// all-nil instruments are harmless to drive, but the per-level sampling
// walk is skippable work when observability is off).
func (m *searchMetrics) enabled() bool { return m.rawHits != nil }
