package ledger

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// LatencyBoundsMicros are the fixed buckets of the batcher's queue/flush
// latency histograms, in microseconds: sub-millisecond enqueue-to-commit
// up to multi-second stalls on a struggling disk.
var LatencyBoundsMicros = []int64{100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000, 2500000, 5000000}

// Batcher amortises ledger appends: items queue in memory and flush as one
// Merkle batch when BatchSize accumulate or MaxWait elapses since the
// oldest queued item — the throughput/latency trade every write-behind
// log makes. A failed flush keeps its items queued and retries on the next
// trigger; the obs layer carries per-item queue latency, per-flush commit
// latency, and a flush-error counter so a degrading disk is visible long
// before Close reports it.
type Batcher struct {
	ledger   *Ledger
	size     int
	maxWait  time.Duration
	scope    *obs.Scope
	faults   *faults.OpInjector
	onCommit func(*Batch)

	mu      sync.Mutex
	pending []queued
	timer   *time.Timer
	closed  bool
	lastErr error
	wg      sync.WaitGroup

	metrics batcherMetrics
}

// batcherMetrics are the batcher's instruments, resolved eagerly at
// NewBatcher so every series exists in the owning scope's registry — and
// hence in /debug/vars and /metrics — from process start, not first flush
// (zero-valued gauges and empty histograms are data: "the queue has been
// empty all along"). Nil scope → all-nil, no-op instruments.
type batcherMetrics struct {
	queueDepth  *obs.Gauge
	queueLat    *obs.Histogram
	flushLat    *obs.Histogram
	flushErrors *obs.Counter
	batches     *obs.Counter
	items       *obs.Counter
}

func newBatcherMetrics(s *obs.Scope) batcherMetrics {
	return batcherMetrics{
		queueDepth:  s.Gauge("ledger_queue_depth"),
		queueLat:    s.Histogram("ledger_queue_latency_us", LatencyBoundsMicros),
		flushLat:    s.Histogram("ledger_flush_latency_us", LatencyBoundsMicros),
		flushErrors: s.Counter("ledger_flush_errors"),
		batches:     s.Counter("ledger_batches"),
		items:       s.Counter("ledger_items"),
	}
}

// queued is one item plus its enqueue instant (for the queue-latency
// histogram).
type queued struct {
	item Item
	enq  time.Time
}

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// BatchSize triggers a flush when this many items are queued
	// (default 16).
	BatchSize int
	// MaxWait triggers a flush this long after the first queued item even
	// if the batch is short (default 500ms) — a lone job's witness must
	// not wait for company forever.
	MaxWait time.Duration
	// OnCommit, when non-nil, observes every successfully committed batch
	// (the server uses it to stamp jobs with their ledger position).
	OnCommit func(*Batch)
	// Scope receives the batcher's metrics and events.
	Scope *obs.Scope
	// Faults, when non-nil, is consulted as operation "ledger.flush" before
	// every flush — the injection point for testing retry behaviour.
	Faults *faults.OpInjector
}

// NewBatcher starts a batcher over l.
func NewBatcher(l *Ledger, opts BatcherOptions) *Batcher {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = 500 * time.Millisecond
	}
	return &Batcher{
		ledger:   l,
		size:     opts.BatchSize,
		maxWait:  opts.MaxWait,
		scope:    opts.Scope,
		faults:   opts.Faults,
		onCommit: opts.OnCommit,
		metrics:  newBatcherMetrics(opts.Scope),
	}
}

// Add enqueues one item. It never blocks on the disk: the commit happens
// on the flush path. Items added after Close are rejected.
func (b *Batcher) Add(item Item) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("ledger: batcher closed")
	}
	b.pending = append(b.pending, queued{item: item, enq: time.Now()})
	b.metrics.queueDepth.Set(int64(len(b.pending)))
	if len(b.pending) >= b.size {
		b.flushLocked()
		return nil
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.maxWait, b.flushTimer)
	}
	return nil
}

// flushTimer is the MaxWait trigger.
func (b *Batcher) flushTimer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.timer = nil
	if len(b.pending) > 0 && !b.closed {
		b.flushLocked()
	}
}

// Flush commits everything currently queued, returning the flush error if
// the commit failed (items stay queued for retry).
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) > 0 {
		b.flushLocked()
	}
	return b.lastErr
}

// flushLocked commits the pending queue as one batch. Caller holds b.mu.
func (b *Batcher) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	items := make([]Item, len(b.pending))
	for i, q := range b.pending {
		items[i] = q.item
	}
	start := time.Now()
	var batch *Batch
	err := b.faults.Hit("ledger.flush")
	if err == nil {
		batch, err = b.ledger.Append(items)
	}
	if err != nil {
		// Keep the items queued; the next Add/timer/Flush retries. Re-arm
		// the timer so a quiet queue still retries.
		b.lastErr = err
		b.metrics.flushErrors.Add(1)
		b.scope.Event("ledger_flush_error",
			slog.Int("items", len(items)),
			slog.String("err", err.Error()))
		if b.timer == nil && !b.closed {
			b.timer = time.AfterFunc(b.maxWait, b.flushTimer)
		}
		return
	}
	now := time.Now()
	for _, q := range b.pending {
		b.metrics.queueLat.Observe(now.Sub(q.enq).Microseconds())
	}
	b.metrics.flushLat.Observe(now.Sub(start).Microseconds())
	b.metrics.batches.Add(1)
	b.metrics.items.Add(int64(len(items)))
	b.metrics.queueDepth.Set(0)
	b.lastErr = nil
	b.pending = b.pending[:0]
	b.scope.Event("ledger_batch_committed",
		slog.Uint64("seq", batch.Seq),
		slog.Int("items", len(batch.Items)),
		slog.String("root", batch.Root.String()))
	if b.onCommit != nil {
		// The callback runs off the batcher lock (it updates job records,
		// which may in turn query the ledger).
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.onCommit(batch)
		}()
	}
}

// Close flushes the queue (retrying is the caller's concern at this point:
// the final flush error is returned) and rejects further Adds.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if len(b.pending) > 0 {
		b.flushLocked()
	}
	err := b.lastErr
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	b.wg.Wait()
	return err
}
