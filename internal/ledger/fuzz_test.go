package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
)

// validBatchBytes is the fuzz seed: a real two-item batch record.
func validBatchBytes() []byte {
	return encodeBatch(&Batch{
		Seq:             2,
		PrevRoot:        wh(1),
		Root:            wh(2),
		WrittenUnixNano: 1700000000,
		Items: []Item{
			{JobID: "j-000001", Witness: wh(3)},
			{JobID: "j-000002", Witness: wh(4)},
		},
	})
}

// FuzzDecodeBatch mirrors the checkpoint decoder fuzz tests: arbitrary
// bytes — truncated, bit-flipped, hostile counts — must decode to a batch
// or fail with ErrCorrupt. Never a panic, never another error class, never
// a giant allocation, and whatever decodes must survive an encode/decode
// roundtrip unchanged (no silent partial loads).
func FuzzDecodeBatch(f *testing.F) {
	valid := validBatchBytes()
	f.Add([]byte{})
	f.Add([]byte{recBatch})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:1+3])
	hostile := append([]byte{recBatch}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		back, err := DecodeBatch(encodeBatch(b))
		if err != nil {
			t.Fatalf("accepted batch does not re-decode: %v", err)
		}
		if !reflect.DeepEqual(back, b) {
			t.Fatalf("re-encode roundtrip drifted:\n got %+v\nwant %+v", back, b)
		}
	})
}

// TestLedgerFileBitFlipExhaustive is the satellite's second half: every
// single-bit flip of a small real ledger file must be caught — by the
// segment checksum, the batch decoder, or the Merkle chain. There is no
// byte in the file whose silent corruption is acceptable.
func TestLedgerFileBitFlipExhaustive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.seg")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Item{{JobID: "j-1", Witness: wh(1)}, {JobID: "j-2", Witness: wh(2)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Item{{JobID: "j-3", Witness: wh(3)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyLedger(path); err != nil {
		t.Fatalf("pristine ledger rejected: %v", err)
	}
	flipped := filepath.Join(t.TempDir(), "flipped.seg")
	for i := range valid {
		for bit := 0; bit < 8; bit++ {
			data := bytes.Clone(valid)
			data[i] ^= 1 << bit
			if err := os.WriteFile(flipped, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := VerifyLedger(flipped)
			if err == nil {
				t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("flip of byte %d bit %d: error %v is not a corruption type", i, bit, err)
			}
		}
	}
}
