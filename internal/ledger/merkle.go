// Package ledger gives the proof service non-repudiable results: every
// completed job's witness hash is batched into a Merkle root, and the roots
// are chained into a checksummed append-only ledger file. A verifier can
// replay the whole chain (VerifyLedger) or check one job's membership from
// a logarithmic inclusion proof, and any bit flipped after the fact — in a
// witness, a batch, or the chain — is detected, never absorbed.
//
// The file format builds on internal/checkpoint's segment framing (magic
// header, length-prefixed sha256-checksummed records), with one batch per
// record. The checksums make torn tails and storage rot detectable; the
// Merkle chain on top makes deliberate tampering detectable even by a
// verifier who only holds the latest root.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Hash is a sha256 digest that renders as hex in JSON and text.
type Hash [sha256.Size]byte

// MarshalText implements encoding.TextMarshaler (lower-case hex).
func (h Hash) MarshalText() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(h)))
	hex.Encode(out, h[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *Hash) UnmarshalText(text []byte) error {
	if hex.DecodedLen(len(text)) != len(h) {
		return fmt.Errorf("ledger: hash %q has wrong length", text)
	}
	_, err := hex.Decode(h[:], text)
	return err
}

// String renders the hash as hex.
func (h Hash) String() string {
	return hex.EncodeToString(h[:])
}

// Domain-separation prefixes: a leaf hash can never be confused with an
// interior node hash, so no second-preimage games across tree levels.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash binds a job id to its witness digest: the leaf is
// sha256(0x00 || uvarint(len(jobID)) || jobID || witness). Including the id
// means an inclusion proof attests "job j produced witness w", not merely
// "witness w appeared in some batch".
func LeafHash(jobID string, witness Hash) Hash {
	h := sha256.New()
	var buf [binary.MaxVarintLen64 + 1]byte
	buf[0] = leafPrefix
	n := binary.PutUvarint(buf[1:], uint64(len(jobID)))
	h.Write(buf[:1+n])
	h.Write([]byte(jobID))
	h.Write(witness[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// MerkleRoot folds the leaves into a root. An odd node at any level is
// promoted unchanged to the next level (no duplication, so two distinct
// leaf sequences can never share a root). The root of zero leaves is the
// zero hash; callers never append empty batches.
func MerkleRoot(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		next := level[:0:len(level)]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nodeHash(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// ProofStep is one sibling on the path from a leaf to the root. Left
// reports the sibling's side: the parent is node(sibling, current) when
// true, node(current, sibling) when false.
type ProofStep struct {
	Hash Hash `json:"hash"`
	Left bool `json:"left"`
}

// Proof is a self-contained inclusion proof: replaying Steps from the leaf
// must reproduce Root, the Merkle root recorded in batch BatchSeq of the
// ledger, whose chain position PrevRoot pins.
type Proof struct {
	JobID    string      `json:"job_id"`
	Witness  Hash        `json:"witness_sha256"`
	Leaf     Hash        `json:"leaf"`
	BatchSeq uint64      `json:"batch_seq"`
	Index    int         `json:"index"`
	Steps    []ProofStep `json:"steps"`
	Root     Hash        `json:"root"`
	PrevRoot Hash        `json:"prev_root"`
}

// merkleProof builds the sibling path for leaf index i. Levels where the
// node is promoted (odd tail) contribute no step.
func merkleProof(leaves []Hash, i int) []ProofStep {
	var steps []ProofStep
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		if i%2 == 1 {
			steps = append(steps, ProofStep{Hash: level[i-1], Left: true})
		} else if i+1 < len(level) {
			steps = append(steps, ProofStep{Hash: level[i+1], Left: false})
		}
		next := level[:0:len(level)]
		for j := 0; j+1 < len(level); j += 2 {
			next = append(next, nodeHash(level[j], level[j+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		i /= 2
	}
	return steps
}

// Verify checks the proof end to end: the leaf must re-derive from JobID
// and Witness, and folding Steps from it must land exactly on Root.
func (p *Proof) Verify() error {
	if got := LeafHash(p.JobID, p.Witness); got != p.Leaf {
		return fmt.Errorf("ledger: proof leaf %s does not bind job %s to its witness (want %s)", p.Leaf, p.JobID, got)
	}
	h := p.Leaf
	for _, s := range p.Steps {
		if s.Left {
			h = nodeHash(s.Hash, h)
		} else {
			h = nodeHash(h, s.Hash)
		}
	}
	if !bytes.Equal(h[:], p.Root[:]) {
		return fmt.Errorf("ledger: proof for job %s folds to %s, root is %s", p.JobID, h, p.Root)
	}
	return nil
}
