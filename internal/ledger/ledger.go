package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// ErrCorrupt is returned (wrapped) whenever a ledger record or the chain
// it forms fails validation: malformed encoding, a recomputed Merkle root
// that disagrees with the recorded one, a broken prev-root link, or a
// non-contiguous batch sequence.
var ErrCorrupt = errors.New("ledger: corrupt")

// ErrNotFound is returned by Proof for a job id the ledger has not
// committed.
var ErrNotFound = errors.New("ledger: job not in ledger")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// Decoding bounds, in the spirit of the checkpoint schema: corruption must
// fail typed, never allocate wild.
const (
	maxBatchItems = 1 << 20
	maxJobIDLen   = 1 << 10
)

// recBatch tags a batch record (the only record kind so far; the tag keeps
// the format extensible the way snapshot sections are).
const recBatch = 1

// Item is one ledgered result: a job id and the sha256 of its witness
// artifact bytes.
type Item struct {
	JobID   string `json:"job_id"`
	Witness Hash   `json:"witness_sha256"`
}

// Batch is one committed Merkle batch. Root covers the items' leaf hashes;
// PrevRoot is the previous batch's Root (zero for the genesis batch), which
// chains the whole ledger so truncating or rewriting history breaks every
// later batch.
type Batch struct {
	Seq             uint64 `json:"seq"`
	PrevRoot        Hash   `json:"prev_root"`
	Root            Hash   `json:"root"`
	WrittenUnixNano int64  `json:"written_unix_nano"`
	Items           []Item `json:"items"`
}

// leaves computes the batch's leaf hashes in item order.
func (b *Batch) leaves() []Hash {
	out := make([]Hash, len(b.Items))
	for i, it := range b.Items {
		out[i] = LeafHash(it.JobID, it.Witness)
	}
	return out
}

// encodeBatch serialises a batch record payload (tag byte + uvarint/bytes
// fields, mirroring the checkpoint snapshot encoding).
func encodeBatch(b *Batch) []byte {
	buf := []byte{recBatch}
	buf = binary.AppendUvarint(buf, b.Seq)
	buf = append(buf, b.PrevRoot[:]...)
	buf = append(buf, b.Root[:]...)
	buf = binary.AppendUvarint(buf, uint64(b.WrittenUnixNano))
	buf = binary.AppendUvarint(buf, uint64(len(b.Items)))
	for _, it := range b.Items {
		buf = binary.AppendUvarint(buf, uint64(len(it.JobID)))
		buf = append(buf, it.JobID...)
		buf = append(buf, it.Witness[:]...)
	}
	return buf
}

// batchDec is a bounds-checked cursor over a batch record payload.
type batchDec struct {
	data []byte
	off  int
	err  error
}

func (d *batchDec) fail(what string) {
	if d.err == nil {
		d.err = corruptf("decoding %s at offset %d", what, d.off)
	}
}

func (d *batchDec) uint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *batchDec) hash(what string) Hash {
	var h Hash
	if d.err != nil {
		return h
	}
	if d.off+len(h) > len(d.data) {
		d.fail(what)
		return h
	}
	copy(h[:], d.data[d.off:])
	d.off += len(h)
	return h
}

func (d *batchDec) str(what string, maxLen uint64) string {
	n := d.uint(what + " length")
	if d.err == nil && n > maxLen {
		d.fail(what + " (out of range)")
	}
	if d.err != nil {
		return ""
	}
	if d.off+int(n) > len(d.data) {
		d.fail(what)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// DecodeBatch rebuilds a batch from a record payload. Malformed input —
// wrong tag, truncation, hostile counts, trailing bytes — fails as
// ErrCorrupt; it never panics. The batch's Merkle root is NOT recomputed
// here (that is chain verification, see VerifyChain), only structure.
func DecodeBatch(payload []byte) (*Batch, error) {
	if len(payload) == 0 {
		return nil, corruptf("empty batch record")
	}
	if payload[0] != recBatch {
		return nil, corruptf("unknown record tag %d", payload[0])
	}
	d := &batchDec{data: payload, off: 1}
	b := &Batch{
		Seq:      d.uint("batch seq"),
		PrevRoot: d.hash("batch prev root"),
		Root:     d.hash("batch root"),
	}
	b.WrittenUnixNano = int64(d.uint("batch written"))
	n := d.uint("batch item count")
	if d.err == nil && n > maxBatchItems {
		d.fail("batch item count (out of range)")
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		b.Items = append(b.Items, Item{
			JobID:   d.str("item job id", maxJobIDLen),
			Witness: d.hash("item witness"),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.data) {
		return nil, corruptf("%d trailing bytes after batch record", len(d.data)-d.off)
	}
	return b, nil
}

// VerifyChain checks a decoded batch sequence end to end: contiguous seqs
// from 1, non-empty batches, every recorded root equal to the recomputed
// Merkle root of its items, and every prev-root equal to its predecessor's
// root (zero for genesis).
func VerifyChain(batches []*Batch) error {
	var prev Hash
	for i, b := range batches {
		if b.Seq != uint64(i)+1 {
			return corruptf("batch %d has seq %d, want %d", i, b.Seq, i+1)
		}
		if len(b.Items) == 0 {
			return corruptf("batch seq %d is empty", b.Seq)
		}
		if b.PrevRoot != prev {
			return corruptf("batch seq %d prev-root %s breaks the chain (want %s)", b.Seq, b.PrevRoot, prev)
		}
		if got := MerkleRoot(b.leaves()); got != b.Root {
			return corruptf("batch seq %d root %s does not match its items (recomputed %s)", b.Seq, b.Root, got)
		}
		prev = b.Root
	}
	return nil
}

// itemRef locates one committed item inside the in-memory mirror.
type itemRef struct {
	batch int
	index int
}

// Ledger is the live append side: it owns the ledger file, keeps a full
// in-memory mirror of the committed batches (the chain is tiny next to the
// proofs it attests), and serves inclusion proofs per job.
type Ledger struct {
	mu      sync.Mutex
	f       *os.File
	w       *checkpoint.Writer
	path    string
	good    int64 // file offset of the last durably committed record's end
	batches []*Batch
	index   map[string]itemRef
	scope   *obs.Scope
	now     func() int64 // batch timestamp source (tests pin it)
}

// Open opens (or creates) the ledger file at path, replays and verifies
// its chain, and truncates a torn tail left by a crash mid-append — the
// records after the tear were never acknowledged, so dropping them is
// recovery, not data loss (the server re-commits unledgered results on its
// recovery sweep). A file whose intact prefix fails chain verification is
// refused: that is tampering or rot, not a crash artifact.
func Open(path string, scope *obs.Scope) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open: %w", err)
	}
	l := &Ledger{f: f, path: path, index: make(map[string]itemRef), scope: scope,
		now: func() int64 { return time.Now().UnixNano() }}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: stat: %w", err)
	}
	if st.Size() == 0 {
		w, err := checkpoint.NewWriter(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: sync header: %w", err)
		}
		l.w, l.good = w, w.Bytes()
		return l, nil
	}
	records, validOff, tailErr := checkpoint.ScanSegment(f)
	if tailErr != nil && validOff == 0 {
		f.Close()
		return nil, fmt.Errorf("ledger: %s: header unreadable: %w", path, tailErr)
	}
	for _, rec := range records {
		b, err := DecodeBatch(rec)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: %s: %w", path, err)
		}
		l.batches = append(l.batches, b)
	}
	if err := VerifyChain(l.batches); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %s: %w", path, err)
	}
	if tailErr != nil {
		// Crash mid-append: drop the torn tail and continue from the last
		// intact record. Loud in obs — operators should see every tear.
		scope.Counter("ledger_torn_tails").Add(1)
		scope.Event("ledger_torn_tail",
			slog.Int64("truncated_from", st.Size()),
			slog.Int64("truncated_to", validOff),
			slog.String("cause", tailErr.Error()))
		if err := f.Truncate(validOff); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validOff, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: seek: %w", err)
	}
	l.w, l.good = checkpoint.NewAppendWriter(f), validOff
	for bi, b := range l.batches {
		for ii, it := range b.Items {
			l.index[it.JobID] = itemRef{batch: bi, index: ii}
		}
	}
	return l, nil
}

// Append commits one batch of items: it computes the Merkle root, chains
// it to the previous root, appends the record and fsyncs before
// acknowledging. On a write failure the file is rolled back to the last
// durable record boundary so a later append continues a clean stream.
func (l *Ledger) Append(items []Item) (*Batch, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("ledger: refusing to append an empty batch")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := &Batch{
		Seq:             uint64(len(l.batches)) + 1,
		WrittenUnixNano: l.now(),
		Items:           append([]Item(nil), items...),
	}
	if n := len(l.batches); n > 0 {
		b.PrevRoot = l.batches[n-1].Root
	}
	b.Root = MerkleRoot(b.leaves())
	before := l.w.Bytes()
	if err := l.w.Append(encodeBatch(b)); err != nil {
		l.rollback()
		return nil, fmt.Errorf("ledger: append batch %d: %w", b.Seq, err)
	}
	if err := l.f.Sync(); err != nil {
		l.rollback()
		return nil, fmt.Errorf("ledger: sync batch %d: %w", b.Seq, err)
	}
	l.good += l.w.Bytes() - before
	l.batches = append(l.batches, b)
	for ii, it := range b.Items {
		l.index[it.JobID] = itemRef{batch: len(l.batches) - 1, index: ii}
	}
	return b, nil
}

// rollback restores the file to the last known-durable record boundary
// after a failed append, so the stream stays clean for the next try.
func (l *Ledger) rollback() {
	_ = l.f.Truncate(l.good)
	_, _ = l.f.Seek(l.good, 0)
}

// Contains reports whether jobID has been committed.
func (l *Ledger) Contains(jobID string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[jobID]
	return ok
}

// Len reports committed batches and items.
func (l *Ledger) Len() (batches, items int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range l.batches {
		items += len(b.Items)
	}
	return len(l.batches), items
}

// Head returns the latest batch seq and root (zero values for an empty
// ledger) — what a relying party pins to audit the service later.
func (l *Ledger) Head() (seq uint64, root Hash) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.batches); n > 0 {
		return l.batches[n-1].Seq, l.batches[n-1].Root
	}
	return 0, Hash{}
}

// Proof builds the inclusion proof for jobID, or ErrNotFound.
func (l *Ledger) Proof(jobID string) (*Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ref, ok := l.index[jobID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, jobID)
	}
	b := l.batches[ref.batch]
	it := b.Items[ref.index]
	return &Proof{
		JobID:    it.JobID,
		Witness:  it.Witness,
		Leaf:     LeafHash(it.JobID, it.Witness),
		BatchSeq: b.Seq,
		Index:    ref.index,
		Steps:    merkleProof(b.leaves(), ref.index),
		Root:     b.Root,
		PrevRoot: b.PrevRoot,
	}, nil
}

// Close syncs and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("ledger: close sync: %w", err)
	}
	return l.f.Close()
}

// VerifyLedger reads the ledger file at path strictly — torn tails and all
// other malformations fail — decodes every batch and verifies the full
// chain. It returns the verified batch and item counts.
func VerifyLedger(path string) (batches, items int, err error) {
	records, err := checkpoint.ReadSegmentFile(path)
	if err != nil {
		return 0, 0, err
	}
	decoded := make([]*Batch, 0, len(records))
	for i, rec := range records {
		b, err := DecodeBatch(rec)
		if err != nil {
			return 0, 0, fmt.Errorf("record %d: %w", i, err)
		}
		decoded = append(decoded, b)
	}
	if err := VerifyChain(decoded); err != nil {
		return 0, 0, err
	}
	for _, b := range decoded {
		items += len(b.Items)
	}
	return len(decoded), items, nil
}
