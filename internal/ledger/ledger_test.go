package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// wh fabricates a distinct witness hash.
func wh(b byte) Hash {
	var h Hash
	for i := range h {
		h[i] = b
	}
	return h
}

func TestMerkleRootAndProofs(t *testing.T) {
	// Every batch width up to 9 covers even, odd and promoted shapes.
	for width := 1; width <= 9; width++ {
		leaves := make([]Hash, width)
		for i := range leaves {
			leaves[i] = LeafHash(fmt.Sprintf("j-%d", i), wh(byte(i)))
		}
		root := MerkleRoot(leaves)
		for i := range leaves {
			p := &Proof{
				JobID:   fmt.Sprintf("j-%d", i),
				Witness: wh(byte(i)),
				Leaf:    leaves[i],
				Index:   i,
				Steps:   merkleProof(leaves, i),
				Root:    root,
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("width %d leaf %d: %v", width, i, err)
			}
			// A proof must not verify a different witness.
			bad := *p
			bad.Witness = wh(0xEE)
			if err := bad.Verify(); err == nil {
				t.Fatalf("width %d leaf %d: proof verified a foreign witness", width, i)
			}
			// Nor a tampered root.
			bad = *p
			bad.Root[0] ^= 1
			if err := bad.Verify(); err == nil {
				t.Fatalf("width %d leaf %d: proof verified against a tampered root", width, i)
			}
		}
	}
	// Distinct leaf sequences get distinct roots (promotion, not
	// duplication: [a b c] must differ from [a b c c]).
	a := []Hash{wh(1), wh(2), wh(3)}
	b := []Hash{wh(1), wh(2), wh(3), wh(3)}
	if MerkleRoot(a) == MerkleRoot(b) {
		t.Fatal("promoted odd leaf collides with duplicated leaf")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{
		Seq:             3,
		PrevRoot:        wh(7),
		Root:            wh(8),
		WrittenUnixNano: 1700000000,
		Items: []Item{
			{JobID: "j-000001", Witness: wh(1)},
			{JobID: "j-000002", Witness: wh(2)},
		},
	}
	got, err := DecodeBatch(encodeBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != b.Seq || got.PrevRoot != b.PrevRoot || got.Root != b.Root ||
		got.WrittenUnixNano != b.WrittenUnixNano || len(got.Items) != 2 ||
		got.Items[0] != b.Items[0] || got.Items[1] != b.Items[1] {
		t.Fatalf("roundtrip drifted:\n got %+v\nwant %+v", got, b)
	}
}

func TestLedgerAppendReopenVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.seg")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	b1, err := l.Append([]Item{{JobID: "j-1", Witness: wh(1)}, {JobID: "j-2", Witness: wh(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Seq != 1 || b1.PrevRoot != (Hash{}) {
		t.Fatalf("genesis batch %+v", b1)
	}
	b2, err := l.Append([]Item{{JobID: "j-3", Witness: wh(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if b2.PrevRoot != b1.Root {
		t.Fatal("batch 2 does not chain to batch 1")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: chain reloads, index finds every job, appends continue.
	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, id := range []string{"j-1", "j-2", "j-3"} {
		if !l2.Contains(id) {
			t.Fatalf("reopened ledger lost %s", id)
		}
		p, err := l2.Proof(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("proof for %s: %v", id, err)
		}
	}
	if _, err := l2.Proof("j-unknown"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job proof: %v", err)
	}
	b3, err := l2.Append([]Item{{JobID: "j-4", Witness: wh(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if b3.Seq != 3 || b3.PrevRoot != b2.Root {
		t.Fatalf("post-reopen batch %+v does not continue the chain", b3)
	}
	if seq, root := l2.Head(); seq != 3 || root != b3.Root {
		t.Fatalf("head = %d/%s", seq, root)
	}

	batches, items, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 3 || items != 4 {
		t.Fatalf("verified %d batches/%d items, want 3/4", batches, items)
	}
}

// TestLedgerTornTailRecovery simulates a crash mid-flush: bytes of a
// partial record after the last intact one. Open must truncate the tear
// (counting it in obs), keep every committed batch, and continue the chain.
func TestLedgerTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.seg")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]Item{{JobID: "j-1", Witness: wh(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Torn tail: the first bytes of a record that never completed.
	torn := append(bytes.Clone(intact), 0x40, 0x01, 0xDE, 0xAD)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	// Strict verification refuses the torn file — tamper evidence first.
	if _, _, err := VerifyLedger(path); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("VerifyLedger on torn file: %v, want ErrCorrupt", err)
	}

	scope := obs.NewScope(nil)
	l2, err := Open(path, scope)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if got := scope.Counter("ledger_torn_tails").Value(); got != 1 {
		t.Fatalf("ledger_torn_tails = %d, want 1", got)
	}
	if !l2.Contains("j-1") {
		t.Fatal("truncation lost a committed batch")
	}
	if _, err := l2.Append([]Item{{JobID: "j-2", Witness: wh(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if batches, items, err := VerifyLedger(path); err != nil || batches != 2 || items != 2 {
		t.Fatalf("post-recovery verify: %d/%d, %v", batches, items, err)
	}
}

// TestLedgerRejectsTampering flips semantic content (not just checksummed
// bytes): a rewritten witness hash re-checksums cleanly at the segment
// layer but must still break the Merkle chain.
func TestLedgerRejectsTampering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.seg")
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]Item{{JobID: "j-1", Witness: wh(1)}})
	l.Append([]Item{{JobID: "j-2", Witness: wh(2)}})
	l.Close()

	records, err := checkpoint.ReadSegmentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite batch 1's item hash and re-publish with valid checksums.
	b, err := DecodeBatch(records[0])
	if err != nil {
		t.Fatal(err)
	}
	b.Items[0].Witness = wh(0xAA) // forged result, root left stale
	forge(t, path, [][]byte{encodeBatch(b), records[1]})
	if _, _, err := VerifyLedger(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged item accepted: %v", err)
	}

	// Recompute the root too: now the chain link to batch 2 breaks.
	b.Root = MerkleRoot(b.leaves())
	forge(t, path, [][]byte{encodeBatch(b), records[1]})
	if _, _, err := VerifyLedger(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged root accepted: %v", err)
	}

	// Dropping a middle batch breaks the seq/chain as well.
	forge(t, path, [][]byte{records[1]})
	if _, _, err := VerifyLedger(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated history accepted: %v", err)
	}
	// And Open refuses it too: rot is not a crash artifact.
	if _, err := Open(path, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open accepted a broken chain: %v", err)
	}
}

// forge rewrites the ledger file with the given record payloads under
// valid segment checksums.
func forge(t *testing.T, path string, records [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	sw, err := checkpoint.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := sw.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}
