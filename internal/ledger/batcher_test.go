package ledger

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

func openTestLedger(t *testing.T, scope *obs.Scope) *Ledger {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "ledger.seg"), scope)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestBatcherSizeTrigger: BatchSize items flush immediately, without
// waiting for MaxWait.
func TestBatcherSizeTrigger(t *testing.T) {
	scope := obs.NewScope(nil)
	l := openTestLedger(t, scope)
	var mu sync.Mutex
	var committed []*Batch
	b := NewBatcher(l, BatcherOptions{
		BatchSize: 2,
		MaxWait:   time.Hour, // must not be the trigger
		Scope:     scope,
		OnCommit: func(batch *Batch) {
			mu.Lock()
			committed = append(committed, batch)
			mu.Unlock()
		},
	})
	b.Add(Item{JobID: "j-1", Witness: wh(1)})
	if n, _ := l.Len(); n != 0 {
		t.Fatal("short batch flushed early")
	}
	b.Add(Item{JobID: "j-2", Witness: wh(2)})
	if n, _ := l.Len(); n != 1 {
		t.Fatalf("full batch did not flush: %d batches", n)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(committed) != 1 || len(committed[0].Items) != 2 {
		t.Fatalf("OnCommit saw %+v", committed)
	}
	if scope.Counter("ledger_batches").Value() != 1 || scope.Counter("ledger_items").Value() != 2 {
		t.Fatal("batch/item counters wrong")
	}
	if scope.Histogram("ledger_queue_latency_us", LatencyBoundsMicros).Count() != 2 {
		t.Fatal("queue latency histogram missing per-item observations")
	}
	if scope.Histogram("ledger_flush_latency_us", LatencyBoundsMicros).Count() != 1 {
		t.Fatal("flush latency histogram missing the flush")
	}
}

// TestBatcherMaxWaitTrigger: a lone item flushes after MaxWait.
func TestBatcherMaxWaitTrigger(t *testing.T) {
	l := openTestLedger(t, nil)
	b := NewBatcher(l, BatcherOptions{BatchSize: 100, MaxWait: 20 * time.Millisecond})
	b.Add(Item{JobID: "j-1", Witness: wh(1)})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := l.Len(); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("max-wait flush never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !l.Contains("j-1") {
		t.Fatal("item not committed")
	}
}

// TestBatcherFlushRetry scripts two flush failures via the faults injector:
// the items must stay queued through the failures and commit on the third
// try, with the error counter carrying the two misses.
func TestBatcherFlushRetry(t *testing.T) {
	scope := obs.NewScope(nil)
	l := openTestLedger(t, scope)
	inj := faults.NewOpInjector()
	inj.Fail("ledger.flush", 2, nil)
	// MaxWait is deliberately huge: the retries in this test must come from
	// the explicit Flush calls, not a racing timer.
	b := NewBatcher(l, BatcherOptions{BatchSize: 1, MaxWait: time.Hour, Scope: scope, Faults: inj})
	b.Add(Item{JobID: "j-1", Witness: wh(1)}) // trigger 1: injected failure
	if err := b.Flush(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("second flush: %v, want injected failure", err)
	}
	if n, _ := l.Len(); n != 0 {
		t.Fatal("failed flush committed something")
	}
	if err := b.Flush(); err != nil { // third try: budget exhausted, commits
		t.Fatalf("flush after injection budget: %v", err)
	}
	if !l.Contains("j-1") {
		t.Fatal("item lost across failed flushes")
	}
	if got := scope.Counter("ledger_flush_errors").Value(); got != 2 {
		t.Fatalf("ledger_flush_errors = %d, want 2", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Hits("ledger.flush"); got != 3 {
		t.Fatalf("flush attempts = %d, want 3", got)
	}
}

// TestBatcherCloseRejectsLateAdds: Close drains, later Adds fail.
func TestBatcherCloseRejectsLateAdds(t *testing.T) {
	l := openTestLedger(t, nil)
	b := NewBatcher(l, BatcherOptions{BatchSize: 100, MaxWait: time.Hour})
	b.Add(Item{JobID: "j-1", Witness: wh(1)})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !l.Contains("j-1") {
		t.Fatal("Close did not drain the queue")
	}
	if err := b.Add(Item{JobID: "j-2", Witness: wh(2)}); err == nil {
		t.Fatal("Add after Close accepted")
	}
}

// TestBatcherMetricsEagerlyRegistered pins the flight-recorder contract:
// constructing a Batcher registers its whole metric family up front, so
// /debug/vars and /metrics expose the series (at zero) from process start
// rather than after the first witness flows through.
func TestBatcherMetricsEagerlyRegistered(t *testing.T) {
	scope := obs.NewScope(nil)
	l := openTestLedger(t, scope)
	b := NewBatcher(l, BatcherOptions{BatchSize: 100, MaxWait: time.Hour, Scope: scope})
	defer b.Close()

	snap := scope.Registry().Snapshot()
	for _, name := range []string{
		"ledger_queue_depth",
		"ledger_queue_latency_us",
		"ledger_flush_latency_us",
		"ledger_flush_errors",
		"ledger_batches",
		"ledger_items",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %q not registered before first flush", name)
		}
	}
	if got := scope.Gauge("ledger_queue_depth").Value(); got != 0 {
		t.Fatalf("fresh queue depth = %d", got)
	}
	b.Add(Item{JobID: "j-1", Witness: wh(1)})
	if got := scope.Gauge("ledger_queue_depth").Value(); got != 1 {
		t.Fatalf("queue depth after one Add = %d, want 1", got)
	}
}
