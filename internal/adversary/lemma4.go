package adversary

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"repro/internal/model"
)

// Lemma4Result is the conclusion of Lemma 4: after the p-only execution
// Alpha from the starting configuration, the pair Q is bivalent and every
// process in p - Q covers a different register.
type Lemma4Result struct {
	// Alpha is the constructed p-only execution.
	Alpha model.Path
	// Q is the bivalent pair.
	Q []int
	// Config is the configuration reached by Alpha.
	Config model.Config
	// Covered maps each process in p-Q to the distinct register it covers.
	Covered map[int]int
	// Rounds counts covering-sequence iterations (the D_i of the proof),
	// summed over all recursion levels, for the experiment tables.
	Rounds int
}

// Lemma4 implements the paper's main technical lemma by induction on |p|:
// given p bivalent from c (|p| >= 2), construct a p-only execution α and a
// pair Q ⊆ p such that Q is bivalent from cα and every process in p - Q
// covers a different register in cα.
//
// The construction follows the proof verbatim: Lemma 1 peels off a process z
// leaving p-{z} bivalent; the induction hypothesis plus Lemma 3 then yield a
// sequence of configurations D_0, D_1, ... in each of which some pair is
// bivalent and the rest of p-{z} cover distinct registers, consecutive
// configurations being linked by executions α_i = φ_i β_i ψ_i that contain a
// block write β_i. Since there are finitely many registers, two indices
// i < j cover the same register set V; z is then run solo from D_i φ_i until
// poised to write outside V (Lemma 2 guarantees this), its covered writes
// are hidden under the block write β_i, and the suffix ψ_i α_{i+1} ... α_{j-1}
// replays unchanged because p-{z} cannot distinguish the configurations.
func (e *Engine) Lemma4(ctx context.Context, c model.Config, p []int) (*Lemma4Result, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("lemma 4: need |P| >= 2, got %d", len(p))
	}
	if biv, err := e.oracle.Bivalent(ctx, c, p); err != nil {
		return nil, fmt.Errorf("lemma 4: %w", err)
	} else if !biv {
		return nil, fmt.Errorf("lemma 4: P=%v not bivalent from c", p)
	}
	sp := e.scope.StartSpan("lemma4", slog.Int("procs", len(p)))
	res, err := e.lemma4(ctx, c, p)
	if err != nil {
		sp.End(slog.String("err", err.Error()))
		return nil, err
	}
	sp.End(slog.Int("rounds", res.Rounds), slog.Int("covered", len(res.Covered)))
	return res, nil
}

// lemma4 is the recursive worker; the precondition (p bivalent from c) is
// the caller's responsibility.
func (e *Engine) lemma4(ctx context.Context, c model.Config, p []int) (*Lemma4Result, error) {
	if len(p) == 2 {
		// Base case: α empty, Q = p, nothing covered.
		return &Lemma4Result{
			Alpha:   model.Path{},
			Q:       append([]int{}, p...),
			Config:  c,
			Covered: map[int]int{},
		}, nil
	}

	// Lemma 1: peel off z so that p-{z} is bivalent from d = cγ.
	gamma, z, err := e.Lemma1(ctx, c, p)
	if err != nil {
		return nil, fmt.Errorf("lemma 4 (|P|=%d): %w", len(p), err)
	}
	rest := model.Without(p, z)
	d := model.RunPath(c, gamma)

	// Build the covering sequence (D_i).
	// D_0 comes from the induction hypothesis applied at d.
	ih, err := e.lemma4(ctx, d, rest)
	if err != nil {
		return nil, err
	}
	eta := ih.Alpha
	totalRounds := ih.Rounds

	rounds := make([]coveringRound, 0, 8)
	seen := make(map[string]int) // cover signature -> first index
	cur := coveringRound{config: ih.Config, q: ih.Q, r: model.Without(rest, ih.Q...)}

	for i := 0; ; i++ {
		if i >= e.maxRounds {
			return nil, fmt.Errorf("lemma 4: no repeated cover set within %d rounds (pigeonhole violated?)", e.maxRounds)
		}
		totalRounds++
		e.prog.rounds++
		sig, cover, err := coverSignature(cur.config, cur.r)
		if err != nil {
			return nil, fmt.Errorf("lemma 4 round %d: %w", i, err)
		}
		cur.sig, cur.cover = sig, cover
		if len(cover) != len(cur.r) {
			return nil, fmt.Errorf("lemma 4 round %d: R_i covers %d registers for %d processes (not distinct)",
				i, len(cover), len(cur.r))
		}
		e.prog.forcedAtLeast(len(cover))
		e.stage("lemma 4: covering round %d (|P|=%d, %d registers covered)", i, len(p), len(cover))
		if e.scope.Enabled() {
			e.scope.Counter("lemma4_rounds").Add(1)
			e.scope.Event("lemma4_round",
				slog.Int("procs", len(p)),
				slog.Int("round", i),
				slog.Int("covered", len(cover)),
				slog.String("signature", sig),
			)
		}

		if j, ok := seen[sig]; ok {
			// Pigeonhole: rounds[j] and cur cover the same set V.
			// (The proof's i is our rounds[j], its j our cur.)
			res, err := e.spliceZ(ctx, rounds, j, cur, z, rest)
			if err != nil {
				return nil, err
			}
			res.Alpha = model.ConcatPaths(gamma, eta, res.Alpha)
			res.Rounds = totalRounds
			e.prog.note("lemma 4 (|P|=%d): covering construction complete, %d distinct registers covered", len(p), len(res.Covered))
			e.prog.forcedAtLeast(len(res.Covered))
			return res, nil
		}
		seen[sig] = i

		// Advance to D_{i+1}.
		if len(cur.r) == 0 {
			// R_i = ∅: D_{i+1} = D_i with empty α_i. The signature
			// "" repeats immediately at the next iteration, so the
			// pigeonhole branch fires with V = ∅.
			cur.phi, cur.beta, cur.psi, cur.alpha = nil, nil, nil, nil
			rounds = append(rounds, cur)
			cur = coveringRound{config: cur.config, q: cur.q, r: cur.r}
			continue
		}
		phi, _, err := e.Lemma3(ctx, cur.config, rest, cur.r)
		if err != nil {
			return nil, fmt.Errorf("lemma 4 round %d: %w", i, err)
		}
		beta := model.MovesOf(model.BlockWrite(cur.r))
		afterBlock := model.RunPath(cur.config, model.ConcatPaths(phi, beta))
		// R_i ∪ {q} is bivalent from D_i φ_i β_i, hence (Prop 1(ii))
		// rest is bivalent there; apply the induction hypothesis.
		next, err := e.lemma4(ctx, afterBlock, rest)
		if err != nil {
			return nil, err
		}
		totalRounds += next.Rounds
		cur.phi, cur.beta, cur.psi = phi, beta, next.Alpha
		cur.alpha = model.ConcatPaths(phi, beta, next.Alpha)
		rounds = append(rounds, cur)
		cur = coveringRound{config: next.Config, q: next.Q, r: model.Without(rest, next.Q...)}
	}
}

// coveringRound records one configuration D_i of Lemma 4's covering
// sequence, together with the executions linking it to D_{i+1}.
type coveringRound struct {
	config model.Config // D_i
	q      []int        // bivalent pair Q_i
	r      []int        // covering set R_i = rest - Q_i
	sig    string       // canonical covered-register set of R_i in D_i
	cover  map[int]bool // registers covered by R_i in D_i
	phi    model.Path   // φ_i (Q_i-only, from Lemma 3)
	beta   model.Path   // β_i (block write by R_i)
	psi    model.Path   // ψ_i (rest-only, from the induction hypothesis)
	alpha  model.Path   // α_i = φ_i β_i ψ_i
}

// spliceZ performs the pigeonhole step of Lemma 4's proof: rounds[i] and the
// later round cur (the proof's D_i and D_j) cover the same register set V.
// Run z solo from D_i·φ_i until it is poised to write outside V (its prefix
// ζ' writes only inside V, so the block write β_i hides it from rest), then
// replay ψ_i α_{i+1} ... α_{j-1} to reach a configuration indistinguishable
// from D_j to rest — in which z additionally covers a register outside V.
func (e *Engine) spliceZ(ctx context.Context, rounds []coveringRound, i int, cur coveringRound, z int, rest []int) (*Lemma4Result, error) {
	e.stage("lemma 4: pigeonhole splice of p%d between rounds %d and %d", z, i, len(rounds))
	e.scope.Event("lemma4_splice",
		slog.Int("z", z), slog.Int("round_i", i), slog.Int("round_j", len(rounds)))
	ri := rounds[i]
	afterPhi := model.RunPath(ri.config, ri.phi)

	// ζ': z's solo execution from D_i φ_i truncated before its first
	// write outside the cover of R_i in D_i (Lemma 2 guarantees such a
	// write exists because R_i ∪ {q_i} ⊆ rest is bivalent from D_i φ_i β_i).
	zetaPrime, outside, err := e.Lemma2(ctx, afterPhi, ri.r, z)
	if err != nil {
		return nil, fmt.Errorf("lemma 4 splice: %w", err)
	}

	// α-suffix: ζ' β_i ψ_i α_{i+1} ... α_{j-1}.
	suffix := model.ConcatPaths(zetaPrime, ri.beta, ri.psi)
	for k := i + 1; k < len(rounds); k++ {
		suffix = model.ConcatPaths(suffix, rounds[k].alpha)
	}
	// Prefix: α_0 ... α_{i-1} φ_i.
	var alpha model.Path
	for k := 0; k < i; k++ {
		alpha = model.ConcatPaths(alpha, rounds[k].alpha)
	}
	alpha = model.ConcatPaths(alpha, ri.phi, suffix)

	final := model.RunPath(rounds[0].config, alpha)

	// Verification: rest cannot distinguish `final` from D_j = cur.config,
	// the pair cur.q is bivalent, and the covering processes cover
	// distinct registers with z strictly outside V.
	if !final.IndistinguishableTo(cur.config, rest) {
		return nil, fmt.Errorf("lemma 4 splice: final configuration distinguishable from D_j by P-{z}")
	}
	covered := make(map[int]int, len(cur.r)+1)
	used := make(map[int]bool, len(cur.r)+1)
	for _, pid := range cur.r {
		reg, ok := final.CoveredRegister(pid)
		if !ok || used[reg] {
			return nil, fmt.Errorf("lemma 4 splice: p%d does not cover a fresh register", pid)
		}
		covered[pid], used[reg] = reg, true
	}
	if used[outside] {
		return nil, fmt.Errorf("lemma 4 splice: z's register %d already covered", outside)
	}
	zReg, ok := final.CoveredRegister(z)
	if !ok || zReg != outside {
		return nil, fmt.Errorf("lemma 4 splice: z not poised on register %d", outside)
	}
	covered[z] = outside

	q := append([]int{}, cur.q...)
	sort.Ints(q)
	biv, err := e.oracle.Bivalent(ctx, final, q)
	if err != nil {
		return nil, fmt.Errorf("lemma 4 splice verify: %w", err)
	}
	if !biv {
		return nil, fmt.Errorf("lemma 4 splice: Q=%v not bivalent in final configuration", q)
	}
	return &Lemma4Result{
		Alpha:   alpha,
		Q:       q,
		Config:  final,
		Covered: covered,
	}, nil
}
