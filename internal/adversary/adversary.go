// Package adversary implements the constructions of Zhu's "A Tight Space
// Bound for Consensus" (Section 3) as executable algorithms: given any
// consensus protocol expressed in internal/model, it actually builds the
// executions whose existence the paper proves — culminating in Theorem1,
// which drives the protocol into a configuration where n-1 distinct
// registers are covered or written.
//
// Every function mirrors one artifact of the paper:
//
//	Proposition 2  -> InitialBivalent
//	Lemma 1        -> Engine.Lemma1
//	Lemma 2        -> Engine.Lemma2
//	Lemma 3        -> Engine.Lemma3
//	Lemma 4        -> Engine.Lemma4
//	Theorem 1      -> Engine.Theorem1
//
// The proofs are non-constructive only in their use of "P can decide v from
// C"; the valency oracle (internal/valency) decides those quantifiers by
// exhaustive search, so the constructions here terminate with concrete
// witness executions. Each function re-verifies the property its paper
// counterpart guarantees and returns an error if the protocol or the oracle
// bounds betray it — running this package against a protocol is a mechanical
// check of the paper's proof on that protocol.
package adversary

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/valency"
)

// Engine runs the constructions for one protocol instance.
type Engine struct {
	oracle *valency.Oracle
	// scope is the observability scope inherited from the oracle's
	// exploration options: the lemma stages trace themselves as spans
	// mirroring the paper's proof structure, and phase labels feed the
	// /progress endpoint. nil (the default) disables all of it.
	scope *obs.Scope
	// prog records completed proof stages so an interrupted run can
	// report its progress (see Partial). Entry points reset it.
	prog progress
	// maxRounds caps the D_i sequence in Lemma 4; the pigeonhole argument
	// bounds it by the number of register subsets, and the cap turns a
	// violated invariant into an error instead of a hang.
	maxRounds int
	// probeBudget bounds each of Lemma 1's bivalence probes (see
	// DefaultProbeBudget).
	probeBudget int
	// ckpt, when set, is told which proof stage is current so snapshots
	// are stage-tagged and a resumed run reports the lemma it re-enters.
	ckpt *checkpoint.Coordinator
}

// DefaultMaxRounds caps the covering sequence per Lemma 4 invocation.
const DefaultMaxRounds = 4096

// DefaultProbeBudget is the per-candidate configuration budget for Lemma 1's
// bivalence probes. It is sized to be negligible next to an exhaustive
// |P|-1 search (millions to hundreds of millions of configurations for
// DiskRace at n=4) while still letting solo-seeded certificates and small
// exhausted subspaces resolve; a failed probe costs at most this many
// configurations before Lemma 1 falls back to the exact path.
const DefaultProbeBudget = 1 << 16

// New returns an engine backed by the given valency oracle.
func New(oracle *valency.Oracle) *Engine {
	return &Engine{
		oracle:      oracle,
		scope:       oracle.Obs(),
		maxRounds:   DefaultMaxRounds,
		probeBudget: DefaultProbeBudget,
	}
}

// Oracle exposes the engine's valency oracle (for reporting query counts).
func (e *Engine) Oracle() *valency.Oracle { return e.oracle }

// SetCheckpointer attaches a coordinator to both the engine (stage tags)
// and its oracle (memo source plus in-flight query snapshots). nil detaches.
func (e *Engine) SetCheckpointer(c *checkpoint.Coordinator) {
	e.ckpt = c
	e.oracle.SetCheckpointer(c)
}

// stage records a proof-stage transition: the /progress phase label, the
// snapshot stage tag, and a checkpoint save opportunity. Stage strings are
// what an operator sees in a resumed run's "re-entering" log line.
func (e *Engine) stage(format string, args ...any) {
	e.scope.SetPhase(format, args...)
	if e.ckpt != nil {
		e.ckpt.SetStage(fmt.Sprintf(format, args...))
		e.ckpt.Tick()
	}
}

// InitialBivalent implements Proposition 2: it returns the initial
// configuration in which process 0 has input 0, process 1 has input 1 and
// every other process has input 1, and verifies that {p0} is 0-univalent,
// {p1} is 1-univalent, and hence {p0,p1} is bivalent.
func (e *Engine) InitialBivalent(ctx context.Context, m model.Machine, n int) (model.Config, error) {
	if n < 2 {
		return model.Config{}, fmt.Errorf("adversary: need n >= 2 processes, got %d", n)
	}
	e.stage("proposition 2: initial bivalence (n=%d)", n)
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = valency.V1
	}
	inputs[0] = valency.V0
	c := model.NewConfig(m, inputs)
	for pid, want := range []model.Value{valency.V0, valency.V1} {
		v, err := e.oracle.Decidable(ctx, c, []int{pid})
		if err != nil {
			return model.Config{}, fmt.Errorf("proposition 2: %w", err)
		}
		if got, ok := v.Univalent(); !ok || got != want {
			return model.Config{}, fmt.Errorf(
				"proposition 2 violated: {p%d} should be %s-univalent, decidable set %v",
				pid, string(want), v.Decidable)
		}
		e.prog.note("proposition 2: {p%d} is %s-univalent", pid, string(want))
	}
	biv, err := e.oracle.Bivalent(ctx, c, []int{0, 1})
	if err != nil {
		return model.Config{}, fmt.Errorf("proposition 2: %w", err)
	}
	if !biv {
		return model.Config{}, fmt.Errorf("proposition 2 violated: {p0,p1} not bivalent")
	}
	e.prog.note("proposition 2: initial configuration bivalent for {p0,p1}")
	return c, nil
}

// Lemma1 implements Lemma 1: given a configuration c and a process set p
// (|p| >= 3) bivalent from c, it returns a p-only execution φ and a process
// z ∈ p such that p - {z} is bivalent from cφ.
func (e *Engine) Lemma1(ctx context.Context, c model.Config, p []int) (model.Path, int, error) {
	if len(p) < 3 {
		return nil, 0, fmt.Errorf("lemma 1: need |P| >= 3, got %d", len(p))
	}
	e.stage("lemma 1: peeling a process from |P|=%d", len(p))
	sp := e.scope.StartSpan("lemma1", slog.Int("procs", len(p)))
	phi, z, err := e.lemma1(ctx, c, p)
	if err != nil {
		sp.End(slog.String("err", err.Error()))
		return nil, 0, err
	}
	sp.End(slog.Int("peeled", z), slog.Int("phi_steps", len(phi)))
	return phi, z, nil
}

// lemma1 is Lemma1's worker; the wrapper traces it as one span per peel.
func (e *Engine) lemma1(ctx context.Context, c model.Config, p []int) (model.Path, int, error) {

	// Fast path: the lemma only asks for SOME z ∈ p with p-{z} bivalent
	// from cφ, and bivalence has a short positive certificate (two
	// deciding executions) while refuting it needs the whole p-{z} space
	// exhausted. So before committing to any exhaustive query, probe the
	// candidates under a budget: a hit yields z with φ empty, exactly the
	// lemma's conclusion. For DiskRace at n=4 this is the difference
	// between two solo runs and a >10^8-configuration exhaustion — the
	// probes are what let Theorem 1 finish at n=4 at all. The candidates'
	// spaces overlap almost entirely, so they are submitted as one batch
	// sharing a single search (and a single budget) instead of exploring
	// the shared space once per candidate; the smallest peeled process
	// wins, matching the sequential probe order.
	cands := make([][]int, len(p))
	for i, z := range p {
		cands[i] = model.Without(p, z)
	}
	bivs, err := e.oracle.ProbeBivalentBatch(ctx, c, cands, e.probeBudget)
	if err != nil {
		return nil, 0, fmt.Errorf("lemma 1 probe: %w", err)
	}
	for i, biv := range bivs {
		if biv {
			z := p[i]
			e.prog.note("lemma 1 (|P|=%d): probe peeled p%d with empty φ", len(p), z)
			return model.Path{}, z, nil
		}
	}

	z1, z2 := p[0], p[1]
	q1 := model.Without(p, z1)
	q2 := model.Without(p, z2)
	inter := model.Without(p, z1, z2)

	vInter, err := e.oracle.Decidable(ctx, c, inter)
	if err != nil {
		return nil, 0, fmt.Errorf("lemma 1: %w", err)
	}
	v, ok := vInter.Any()
	if !ok {
		return nil, 0, fmt.Errorf("lemma 1: Q1∩Q2 decides nothing (Proposition 1(i) violated)")
	}
	vbar := valency.Opposite(v)

	// If either Q_i can already decide v̄ it is bivalent (it inherits v
	// from Q1∩Q2 by Proposition 1(ii)) and φ is empty.
	for _, cand := range []struct {
		q []int
		z int
	}{{q1, z1}, {q2, z2}} {
		can, err := e.oracle.CanDecide(ctx, c, cand.q, vbar)
		if err != nil {
			return nil, 0, fmt.Errorf("lemma 1: %w", err)
		}
		if can {
			e.prog.note("lemma 1 (|P|=%d): peeled p%d with empty \u03c6", len(p), cand.z)
			return model.Path{}, cand.z, nil
		}
	}

	// Both Q1 and Q2 are v-univalent from c; P is bivalent, so take a
	// P-only execution ψ deciding v̄ and find the last prefix from which
	// both are still v-univalent.
	vp, err := e.oracle.Decidable(ctx, c, p)
	if err != nil {
		return nil, 0, fmt.Errorf("lemma 1: %w", err)
	}
	psi, ok := vp.Witness[vbar]
	if !ok {
		return nil, 0, fmt.Errorf("lemma 1: P not bivalent from c (no %s witness)", string(vbar))
	}

	d := c
	for i, mv := range psi {
		next := applyMove(d, mv)
		u1, err := univalentAt(ctx, e.oracle, next, q1, v)
		if err != nil {
			return nil, 0, fmt.Errorf("lemma 1 prefix %d: %w", i, err)
		}
		u2, err := univalentAt(ctx, e.oracle, next, q2, v)
		if err != nil {
			return nil, 0, fmt.Errorf("lemma 1 prefix %d: %w", i, err)
		}
		if u1 && u2 {
			d = next
			continue
		}
		// δ = ψ[i] is the critical step. If its mover is in Q1, then
		// Q1 stays v-univalent across δ, so Q2 must be the bivalent
		// side (and symmetrically).
		phi := append(model.Path{}, psi[:i+1]...)
		z := z2
		if mv.Pid == z1 {
			// The mover is z1 itself, which lies only in Q2: Q2
			// stays univalent, so Q1 = P - {z1} is bivalent.
			z = z1
		}
		rest := model.Without(p, z)
		biv, err := e.oracle.Bivalent(ctx, model.RunPath(c, phi), rest)
		if err != nil {
			return nil, 0, fmt.Errorf("lemma 1 verify: %w", err)
		}
		if !biv {
			return nil, 0, fmt.Errorf("lemma 1 violated: P-{p%d} not bivalent after critical step %d", z, i)
		}
		e.prog.note("lemma 1 (|P|=%d): peeled p%d after critical step %d", len(p), z, i)
		return phi, z, nil
	}
	return nil, 0, fmt.Errorf("lemma 1: no critical step found along ψ (oracle inconsistency)")
}

// Lemma2 implements Lemma 2 as a construction: given a configuration c, a
// covering set r (whose covered registers are read from c), and a process z
// outside the set that was used to establish bivalence, it returns a
// {z}-only deciding execution from c, truncated just before z's first write
// to a register NOT covered by r, together with that register. The paper
// guarantees such a write exists whenever some P ⊇ r with z ∉ P is bivalent
// from cβ; callers are responsible for that hypothesis, and Lemma2 errors if
// the write never materialises.
func (e *Engine) Lemma2(ctx context.Context, c model.Config, r []int, z int) (model.Path, int, error) {
	covered, ok := c.CoverSet(r)
	if !ok {
		return nil, 0, fmt.Errorf("lemma 2: not every process in %v covers a register", r)
	}
	e.stage("lemma 2: forcing p%d outside a %d-register cover", z, len(r))
	sp := e.scope.StartSpan("lemma2", slog.Int("z", z), slog.Int("cover", len(r)))
	zetaPrime, outside, err := e.lemma2(ctx, c, covered, z)
	if err != nil {
		sp.End(slog.String("err", err.Error()))
		return nil, 0, err
	}
	sp.End(slog.Int("outside_register", outside), slog.Int("zeta_steps", len(zetaPrime)))
	return zetaPrime, outside, nil
}

// lemma2 is Lemma2's worker over the already-validated cover set.
func (e *Engine) lemma2(ctx context.Context, c model.Config, covered map[int]bool, z int) (model.Path, int, error) {
	zeta, _, err := e.oracle.SoloDeciding(ctx, c, z)
	if err != nil {
		return nil, 0, fmt.Errorf("lemma 2: %w", err)
	}
	d := c
	for i, mv := range zeta {
		op := d.State(z).Pending()
		if op.Kind == model.OpWrite && !covered[op.Reg] {
			e.prog.note("lemma 2: p%d forced outside cover %v, poised on register %d", z, model.PidList(covered), op.Reg)
			return append(model.Path{}, zeta[:i]...), op.Reg, nil
		}
		d = applyMove(d, mv)
	}
	return nil, 0, fmt.Errorf(
		"lemma 2 violated: p%d decided solo writing only inside the cover %v", z, model.PidList(covered))
}

// Lemma3 implements Lemma 3: c is a configuration, p a process set, r ⊆ p a
// non-empty set of covering processes in c with q = p - r bivalent from c.
// It returns a (p-r)-only execution φ and a process q ∈ p-r such that
// r ∪ {q} is bivalent from cφβ, where β is the block write by r.
func (e *Engine) Lemma3(ctx context.Context, c model.Config, p, r []int) (model.Path, int, error) {
	if len(r) == 0 {
		return nil, 0, fmt.Errorf("lemma 3: covering set must be non-empty")
	}
	if _, ok := c.CoverSet(r); !ok {
		return nil, 0, fmt.Errorf("lemma 3: not every process in %v covers a register in c", r)
	}
	e.stage("lemma 3: critical Q-only execution (|P|=%d, |R|=%d)", len(p), len(r))
	sp := e.scope.StartSpan("lemma3", slog.Int("procs", len(p)), slog.Int("cover", len(r)))
	phi, crit, err := e.lemma3(ctx, c, p, r)
	if err != nil {
		sp.End(slog.String("err", err.Error()))
		return nil, 0, err
	}
	sp.End(slog.Int("q", crit), slog.Int("phi_steps", len(phi)))
	return phi, crit, nil
}

// lemma3 is Lemma3's worker; the wrapper traces it as one span.
func (e *Engine) lemma3(ctx context.Context, c model.Config, p, r []int) (model.Path, int, error) {
	q := model.Without(p, r...)
	if len(q) == 0 {
		return nil, 0, fmt.Errorf("lemma 3: P-R is empty")
	}
	beta := model.MovesOf(model.BlockWrite(r))

	// v: some value R can decide from cβ (Proposition 1(i)).
	vr, err := e.oracle.Decidable(ctx, model.RunPath(c, beta), r)
	if err != nil {
		return nil, 0, fmt.Errorf("lemma 3: %w", err)
	}
	v, ok := vr.Any()
	if !ok {
		return nil, 0, fmt.Errorf("lemma 3: R decides nothing from cβ")
	}
	vbar := valency.Opposite(v)

	// ψ: a Q-only execution from c deciding v̄.
	vq, err := e.oracle.Decidable(ctx, c, q)
	if err != nil {
		return nil, 0, fmt.Errorf("lemma 3: %w", err)
	}
	psi, ok := vq.Witness[vbar]
	if !ok {
		return nil, 0, fmt.Errorf("lemma 3: Q=%v not bivalent from c (cannot decide %s)", q, string(vbar))
	}

	// φ: the longest prefix of ψ such that R can decide v from cφβ.
	// Precompute the configurations along ψ, then scan from the end.
	configs := make([]model.Config, 0, len(psi)+1)
	d := c
	configs = append(configs, d)
	for _, mv := range psi {
		d = applyMove(d, mv)
		configs = append(configs, d)
	}
	for i := len(psi) - 1; i >= 0; i-- {
		can, err := e.oracle.CanDecide(ctx, model.RunPath(configs[i], beta), r, v)
		if err != nil {
			return nil, 0, fmt.Errorf("lemma 3 prefix %d: %w", i, err)
		}
		if !can {
			continue
		}
		phi := append(model.Path{}, psi[:i]...)
		crit := psi[i].Pid
		// Verify the lemma's conclusion: R ∪ {crit} bivalent from cφβ.
		group := append(append([]int{}, r...), crit)
		sort.Ints(group)
		biv, err := e.oracle.Bivalent(ctx, model.RunPath(configs[i], beta), group)
		if err != nil {
			return nil, 0, fmt.Errorf("lemma 3 verify: %w", err)
		}
		if !biv {
			return nil, 0, fmt.Errorf("lemma 3 violated: R∪{p%d} not bivalent from cφβ", crit)
		}
		e.prog.note("lemma 3: R=%v block-write survives; R∪{p%d} bivalent", r, crit)
		return phi, crit, nil
	}
	return nil, 0, fmt.Errorf("lemma 3: no prefix of ψ leaves R able to decide %s after β", string(v))
}

func applyMove(c model.Config, m model.Move) model.Config {
	return model.RunPath(c, model.Path{m})
}

// univalentAt reports whether set is v-univalent from c.
func univalentAt(ctx context.Context, o *valency.Oracle, c model.Config, set []int, v model.Value) (bool, error) {
	verdict, err := o.Decidable(ctx, c, set)
	if err != nil {
		return false, err
	}
	got, ok := verdict.Univalent()
	return ok && got == v, nil
}

// coverSignature canonically encodes the set of registers covered by r in c.
func coverSignature(c model.Config, r []int) (string, map[int]bool, error) {
	covered, ok := c.CoverSet(r)
	if !ok {
		return "", nil, fmt.Errorf("cover signature: not all of %v cover registers", r)
	}
	regs := make([]int, 0, len(covered))
	for reg := range covered {
		regs = append(regs, reg)
	}
	sort.Ints(regs)
	parts := make([]string, len(regs))
	for i, reg := range regs {
		parts[i] = strconv.Itoa(reg)
	}
	return strings.Join(parts, ","), covered, nil
}
