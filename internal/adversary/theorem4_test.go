package adversary

import (
	"context"
	"os"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
)

// TestTheorem1DiskRaceN4 exercises the full recursion of Lemma 4 (covering
// sets of size 2, pigeonhole over register subsets). Its first univalence
// query alone must exhaust a >2·10⁸-state quotient, so the test only runs
// when explicitly requested (REPRO_HEAVY=1, hours of CPU and ~15 GB RAM).
func TestTheorem1DiskRaceN4(t *testing.T) {
	if os.Getenv("REPRO_HEAVY") == "" {
		t.Skip("n=4 adversary run needs REPRO_HEAVY=1 (hours of CPU, ~15 GB RAM)")
	}
	e := newEngine(explore.Options{
		KeyFn:      consensus.DiskRace{}.CanonicalKey,
		MaxConfigs: 220_000_000,
	})
	w, err := e.Theorem1(context.Background(), consensus.DiskRace{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Registers < 3 {
		t.Fatalf("witnessed %d registers, want >= 3", w.Registers)
	}
	t.Logf("%v", w)
	t.Logf("oracle: %+v", w.OracleStats)
}
