package adversary

import (
	"context"
	"testing"
	"time"

	"repro/internal/consensus"
)

// TestTheorem1DiskRaceN4 exercises the full recursion of Lemma 4 (covering
// sets of size 2, pigeonhole over register subsets) at n=4. Before Lemma
// 1's bivalence probing this run was hopeless — its first univalence query
// alone had to exhaust a >2·10⁸-state quotient (hours of CPU, ~15 GB RAM,
// gated behind REPRO_HEAVY) — but the probe fast path replaces those
// exhaustions with solo-seeded bivalence certificates, and the whole
// construction now finishes in about a second while searching ~10⁵
// configurations. The generous deadline is a regression tripwire: if the
// probes stop firing, the run degrades to the old behaviour and times out
// loudly instead of hanging the suite.
func TestTheorem1DiskRaceN4(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	e := diskEngine()
	w, err := e.Theorem1(ctx, consensus.DiskRace{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Registers < 3 {
		t.Fatalf("witnessed %d registers, want >= 3 (the paper's n-1 bound)", w.Registers)
	}
	t.Logf("%v", w)
	t.Logf("oracle: %+v", w.OracleStats)
}
