package adversary

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/valency"
)

// witnessView strips a Theorem1Witness to its artifact-visible fields —
// everything trace.Chain/Theorem1DOT render. OracleStats is excluded by
// design: a resumed run answers most queries from the restored memo, so
// its work counters legitimately differ while the witness must not.
type witnessView struct {
	Protocol  string
	N         int
	Inputs    []string
	Execution string
	Covered   map[int]int
	Registers int
	Rounds    int
	Phases    []Phase
}

func viewOf(w *Theorem1Witness) witnessView {
	v := witnessView{
		Protocol:  w.Protocol,
		N:         w.N,
		Covered:   w.Covered,
		Registers: w.Registers,
		Rounds:    w.Rounds,
		Phases:    w.Phases,
	}
	for _, in := range w.Inputs {
		v.Inputs = append(v.Inputs, string(in))
	}
	for _, m := range w.Execution {
		v.Execution += string(rune('a'+m.Pid)) + string(m.Coin) + "."
	}
	return v
}

// TestTheorem1CrashResumeDeterministic is the package-level half of the
// tentpole's acceptance criterion: a Workers:1 DiskRace n=3 construction
// killed mid-run (via context cancellation triggered by a checkpoint save)
// and resumed from the snapshot must produce a witness identical, field by
// field, to an uninterrupted run's.
func TestTheorem1CrashResumeDeterministic(t *testing.T) {
	opts := explore.Options{
		Workers: 1,
		KeyFn:   consensus.DiskRace{}.CanonicalKey,
		KeyTo:   consensus.DiskRace{}.CanonicalKeyTo,
	}
	meta := checkpoint.Meta{Protocol: "diskrace", N: 3, MaxConfigs: opts.MaxConfigs}

	// Reference: uninterrupted run.
	ref, err := New(valency.New(opts)).Theorem1(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: checkpoint on every opportunity, cancel after the 5th
	// save — mid-construction, well before the theorem completes.
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord := checkpoint.NewCoordinator(store, 0, meta, nil)
	saves := 0
	coord.AfterSave = func(*checkpoint.Snapshot) {
		saves++
		if saves == 5 {
			cancel()
		}
	}
	crashed := New(valency.New(opts))
	crashed.SetCheckpointer(coord)
	if _, err := crashed.Theorem1(ctx, consensus.DiskRace{}, 3); err == nil {
		t.Fatal("cancelled run completed — cancel too late to exercise resume")
	} else {
		var p *Partial
		if !errors.As(err, &p) {
			t.Fatalf("cancelled run should fail with *Partial, got %v", err)
		}
	}

	// Resume from the newest snapshot and run to completion.
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Protocol != meta.Protocol || snap.Meta.N != meta.N {
		t.Fatalf("snapshot meta %+v does not identify the run", snap.Meta)
	}
	if snap.Meta.Stage == "" {
		t.Fatal("snapshot carries no proof stage tag")
	}
	resumed, err := ResumeEngine(opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	resumedCoord := checkpoint.NewCoordinator(store, time.Hour, snap.Meta, nil)
	resumed.SetCheckpointer(resumedCoord)
	got, err := resumed.Theorem1(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(viewOf(got), viewOf(ref)) {
		t.Fatalf("resumed witness diverges from uninterrupted run:\n got %+v\nwant %+v", viewOf(got), viewOf(ref))
	}
	// The memo fast-forward must actually have saved work: the resumed
	// run re-explores only what the crash destroyed.
	if rs, fs := resumed.Oracle().Stats(), ref.OracleStats; rs.Configs >= fs.Configs {
		t.Fatalf("resumed run explored %d configs, uninterrupted %d — memo fast-forward did nothing", rs.Configs, fs.Configs)
	}
	if resumedCoord.Err() != nil {
		t.Fatalf("resumed coordinator save error: %v", resumedCoord.Err())
	}
}

// TestCoordinatorSavesAreLoadable round-trips memo-bearing snapshots
// through a real construction: every file the coordinator writes must load
// and decode.
func TestCoordinatorSavesAreLoadable(t *testing.T) {
	opts := explore.Options{Workers: 1}
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := checkpoint.NewCoordinator(store, 0, checkpoint.Meta{Protocol: "flood", N: 3}, nil)
	e := New(valency.New(opts))
	e.SetCheckpointer(coord)
	if _, err := e.Theorem1(context.Background(), consensus.Flood{}, 3); err != nil {
		t.Fatal(err)
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Memo == nil || len(snap.Memo.Verdicts) == 0 {
		t.Fatal("final snapshot carries no memo verdicts")
	}
	memo, err := valency.ImportMemo(snap.Memo)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh oracle over the imported memo must answer every replayed
	// query from memo alone: zero new configurations explored.
	replay := New(valency.NewWithMemo(opts, memo))
	if _, err := replay.Theorem1(context.Background(), consensus.Flood{}, 3); err != nil {
		t.Fatal(err)
	}
	if st := replay.Oracle().Stats(); st.Configs != 0 {
		t.Fatalf("replay over imported memo explored %d configs, want 0", st.Configs)
	}
}
