package adversary

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/explore"
)

// TestTheorem1DeadlinePartial runs the n=5 DiskRace adversary — which still
// outruns any interactive budget even with Lemma 1's bivalence probing,
// because its inner lemmas must exhaust |P|≤3 subspaces over five registers
// (n=4, this test's old subject, now completes in about a second; see
// TestTheorem1DiskRaceN4) — under a deadline of a couple of seconds. The
// run must degrade gracefully: no panic, no bare error, but a *Partial
// naming the lemma stages that completed (Proposition 2's cheap
// solo-univalence queries finish well inside the deadline) and the
// registers forced so far.
func TestTheorem1DeadlinePartial(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	e := diskEngine()
	w, err := e.Theorem1(ctx, consensus.DiskRace{}, 5)
	if w != nil {
		t.Fatalf("n=5 run finished within the deadline?! %v", w)
	}
	if err == nil {
		t.Fatal("expected a Partial error from the deadline-cancelled run")
	}
	var p *Partial
	if !errors.As(err, &p) {
		t.Fatalf("error is not a *Partial: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Partial should unwrap to context.DeadlineExceeded, got %v", err)
	}
	if p.Protocol != "diskrace" || p.N != 5 {
		t.Fatalf("Partial misidentifies the run: %+v", p)
	}
	if len(p.Stages) == 0 {
		t.Fatalf("Partial names no completed stages: %v", p)
	}
	if !strings.Contains(p.Stages[0], "proposition 2") {
		t.Fatalf("first completed stage should be a Proposition 2 univalence check, got %q", p.Stages[0])
	}
	if p.RegistersForced < 0 || p.RegistersForced >= 4 {
		t.Fatalf("registers forced so far should be in [0,4) for an interrupted n=5 run, got %d", p.RegistersForced)
	}
	if p.OracleStats.Queries == 0 {
		t.Fatalf("Partial should carry the oracle's work counters: %+v", p.OracleStats)
	}
	if p.DeepestLevel <= 0 {
		t.Fatalf("Partial should report the deepest completed BFS level, got %d", p.DeepestLevel)
	}
	if p.DeepestLevel != p.OracleStats.DeepestLevel {
		t.Fatalf("Partial.DeepestLevel %d disagrees with OracleStats.DeepestLevel %d",
			p.DeepestLevel, p.OracleStats.DeepestLevel)
	}
	if !strings.Contains(p.Error(), "oracle queries") || !strings.Contains(p.Error(), "BFS level") {
		t.Fatalf("Partial.Error should summarise query count and BFS depth: %q", p.Error())
	}
	t.Logf("partial result:\n%s", p.String())
}

// TestTheorem1CapPartial drives the same degradation path through the
// states-visited budget instead of the wall clock: a tiny MaxConfigs makes
// the n=3 Flood construction hit explore.ErrCapped, which must surface as a
// *Partial too.
func TestTheorem1CapPartial(t *testing.T) {
	e := newEngine(explore.Options{MaxConfigs: 64})
	_, err := e.Theorem1(context.Background(), consensus.Flood{}, 3)
	if err == nil {
		t.Fatal("expected the 64-config budget to interrupt the run")
	}
	var p *Partial
	if !errors.As(err, &p) {
		t.Fatalf("capped run should return *Partial, got %v", err)
	}
	if !errors.Is(err, explore.ErrCapped) {
		t.Fatalf("Partial should unwrap to explore.ErrCapped, got %v", err)
	}
}
