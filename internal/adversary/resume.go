package adversary

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/explore"
	"repro/internal/valency"
)

// ResumeEngine builds an engine whose oracle starts from a loaded
// snapshot: the memo is imported wholesale and the in-flight query (if the
// crash interrupted one) is armed for re-entry. The caller must pass the
// same exploration options the snapshotted run used — Meta records
// Protocol, N and MaxConfigs for that check — and should attach a fresh
// Coordinator (seeded with snap.Meta) via SetCheckpointer to keep saving.
//
// Resumption is a deterministic fast-forward, not a goto: Theorem1 runs
// from the top, but every query answered before the crash hits the
// restored memo and returns the path the original search found, so with
// Workers:1 the construction replays byte-identically to where it died and
// only then starts exploring again.
func ResumeEngine(opts explore.Options, snap *checkpoint.Snapshot) (*Engine, error) {
	if snap == nil {
		return nil, fmt.Errorf("adversary: resume from nil snapshot")
	}
	memo, err := valency.ImportMemo(snap.Memo)
	if err != nil {
		return nil, fmt.Errorf("adversary: resume: %w", err)
	}
	o := valency.NewWithMemo(opts, memo)
	if snap.Query != nil {
		o.SetResume(snap.Query)
	}
	return New(o), nil
}
