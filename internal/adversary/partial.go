package adversary

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/explore"
	"repro/internal/valency"
)

// Partial is returned (as the error) when a resource bound — a context
// deadline, a cancellation, or an exploration cap — stops a construction
// before it finishes. It reports what the run proved before the bound hit:
// the lemma stages that completed, the largest set of distinct registers the
// adversary had forced, and the covering rounds performed. Callers detect it
// with errors.As and can report progress instead of a bare failure; the
// underlying cause (context.DeadlineExceeded, context.Canceled or
// explore.ErrCapped) remains reachable through errors.Is.
type Partial struct {
	// Protocol and N identify the interrupted run.
	Protocol string
	N        int
	// Stages lists the proof stages that fully completed, in order.
	Stages []string
	// RegistersForced is the largest number of distinct registers
	// simultaneously covered in any configuration the construction
	// established before stopping.
	RegistersForced int
	// Rounds counts Lemma 4 covering-sequence iterations completed.
	Rounds int
	// DeepestLevel is the deepest completed BFS level any oracle search
	// reached before the bound hit — the measure of how far into the state
	// space the interrupted query had burrowed.
	DeepestLevel int
	// OracleStats records the exhaustive-search work performed.
	OracleStats valency.Stats
	// Cause is the bounding error that stopped the run.
	Cause error
}

// Error implements error.
func (p *Partial) Error() string {
	return fmt.Sprintf(
		"adversary: %s n=%d interrupted after %d stage(s) (%d registers forced, %d covering rounds, %d oracle queries, BFS level %d reached): %v",
		p.Protocol, p.N, len(p.Stages), p.RegistersForced, p.Rounds, p.OracleStats.Queries, p.DeepestLevel, p.Cause)
}

// Unwrap exposes the bounding cause to errors.Is.
func (p *Partial) Unwrap() error { return p.Cause }

// String renders the full progress report, one stage per line.
func (p *Partial) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\ncompleted stages:\n", p.Error())
	if len(p.Stages) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, s := range p.Stages {
		fmt.Fprintf(&b, "  - %s\n", s)
	}
	return b.String()
}

// bounded reports whether err is a resource bound (deadline, cancellation or
// exploration cap) rather than a genuine property violation.
func bounded(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, explore.ErrCapped)
}

// progress is the engine's stage recorder. Engine entry points reset it;
// every completed proof stage appends a note, so an interrupted run can say
// exactly how far it got.
type progress struct {
	stages []string
	forced int
	rounds int
}

// note records a completed stage.
func (pr *progress) note(format string, args ...any) {
	pr.stages = append(pr.stages, fmt.Sprintf(format, args...))
}

// forcedAtLeast raises the forced-registers high-water mark.
func (pr *progress) forcedAtLeast(n int) {
	if n > pr.forced {
		pr.forced = n
	}
}

// partial wraps err in a Partial carrying the engine's recorded progress
// when err is a resource bound; property violations pass through unchanged.
func (e *Engine) partial(protocol string, n int, err error) error {
	if err == nil || !bounded(err) {
		return err
	}
	return &Partial{
		Protocol:        protocol,
		N:               n,
		Stages:          append([]string(nil), e.prog.stages...),
		RegistersForced: e.prog.forced,
		Rounds:          e.prog.rounds,
		DeepestLevel:    e.oracle.Stats().DeepestLevel,
		OracleStats:     e.oracle.Stats(),
		Cause:           err,
	}
}
