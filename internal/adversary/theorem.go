package adversary

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/valency"
)

// Theorem1Witness is the artifact Theorem 1 promises: a reachable
// configuration of the protocol in which n-1 distinct registers are covered
// or about to be written, demonstrating that the protocol uses at least n-1
// registers.
type Theorem1Witness struct {
	Protocol string
	N        int
	// Inputs is the initial input vector (Proposition 2's mixed inputs).
	Inputs []model.Value
	// Execution drives the initial configuration to the witness
	// configuration.
	Execution model.Path
	// Covered maps each covering process to its distinct register: the
	// n-2 processes of R from Lemma 4 plus the peeled process z poised
	// outside their cover (n=2 instead records the single register of
	// p0's first solo write).
	Covered map[int]int
	// Registers is the number of distinct registers witnessed, ≥ n-1.
	Registers int
	// Rounds is the total number of covering-sequence iterations used by
	// Lemma 4 (0 for n=2).
	Rounds int
	// Phases decomposes Execution into the proof's named sub-executions
	// (α from Lemma 4, φ from Lemma 3, ζ from Lemma 2), for the
	// Figure-4-style diagrams in internal/trace.
	Phases []Phase
	// OracleStats records the exhaustive-search work behind the witness.
	OracleStats valency.Stats
}

// Phase is one labelled sub-execution of a witness.
type Phase struct {
	// Label names the phase in the paper's notation.
	Label string
	// Steps is the phase's length in steps.
	Steps int
}

// String summarises the witness in one line (one row of experiment E1).
func (w *Theorem1Witness) String() string {
	regs := make([]int, 0, len(w.Covered))
	for _, reg := range w.Covered {
		regs = append(regs, reg)
	}
	sort.Ints(regs)
	return fmt.Sprintf("%s n=%d: %d distinct registers witnessed %v (bound n-1=%d), |α|=%d steps, %d covering rounds",
		w.Protocol, w.N, w.Registers, regs, w.N-1, len(w.Execution), w.Rounds)
}

// Theorem1 implements the paper's main theorem as a construction: it drives
// the protocol m with n processes into a configuration witnessing that m
// uses at least n-1 registers.
//
// For n = 2 it follows the theorem's special case: in p0's solo deciding
// execution from the bivalent initial configuration, p0 must write some
// register (otherwise p1 could not distinguish p0's run from no run at all
// and would decide its own value, violating Agreement).
//
// For n >= 3: by Proposition 2 the initial configuration I is bivalent for
// {p0,p1}, hence for the full process set. Lemma 4 reaches C0 where a pair Q
// is bivalent and the remaining n-2 processes R cover distinct registers.
// Lemma 3 produces a Q-only execution φ and q ∈ Q with R ∪ {q} bivalent
// from C0φβ. For z ∈ Q - {q}, Lemma 2 forces z's solo deciding execution
// from C0φ to write outside R's cover — so the protocol touches at least
// |R| + 1 = n-1 distinct registers.
// A cancelled or capped run returns a *Partial error reporting the stages
// that completed and the registers forced so far (use errors.As).
func (e *Engine) Theorem1(ctx context.Context, m model.Machine, n int) (*Theorem1Witness, error) {
	e.prog = progress{}
	sp := e.scope.StartSpan("theorem1", slog.String("protocol", m.Name()), slog.Int("n", n))
	w, err := e.theorem1(ctx, m, n)
	if err != nil {
		sp.End(slog.String("err", err.Error()))
		return w, err
	}
	sp.End(slog.Int("registers", w.Registers), slog.Int("steps", len(w.Execution)))
	e.stage("theorem 1 complete: %d registers witnessed (n=%d)", w.Registers, n)
	return w, nil
}

// theorem1 is Theorem1's worker; the wrapper traces the whole construction
// as one span.
func (e *Engine) theorem1(ctx context.Context, m model.Machine, n int) (*Theorem1Witness, error) {
	initial, err := e.InitialBivalent(ctx, m, n)
	if err != nil {
		return nil, e.partial(m.Name(), n, err)
	}
	witness := &Theorem1Witness{
		Protocol: m.Name(),
		N:        n,
	}
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = valency.V1
	}
	inputs[0] = valency.V0
	witness.Inputs = inputs

	if n == 2 {
		w, err := e.theorem1Pair(ctx, m, initial, witness)
		return w, e.partial(m.Name(), n, err)
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	l4, err := e.Lemma4(ctx, initial, all)
	if err != nil {
		return nil, e.partial(m.Name(), n, fmt.Errorf("theorem 1: %w", err))
	}
	r := model.Without(all, l4.Q...)
	phi, q, err := e.Lemma3(ctx, l4.Config, all, r)
	if err != nil {
		return nil, e.partial(m.Name(), n, fmt.Errorf("theorem 1: %w", err))
	}
	var z int
	for _, pid := range l4.Q {
		if pid != q {
			z = pid
		}
	}
	afterPhi := model.RunPath(l4.Config, phi)
	zeta, outside, err := e.Lemma2(ctx, afterPhi, r, z)
	if err != nil {
		return nil, e.partial(m.Name(), n, fmt.Errorf("theorem 1: %w", err))
	}

	witness.Execution = model.ConcatPaths(l4.Alpha, phi, zeta)
	witness.Rounds = l4.Rounds
	witness.Phases = []Phase{
		{Label: "α (Lemma 4: covering construction)", Steps: len(l4.Alpha)},
		{Label: "φ (Lemma 3: critical Q-only execution)", Steps: len(phi)},
		{Label: fmt.Sprintf("ζ (Lemma 2: p%d solo, truncated before its outside write)", z), Steps: len(zeta)},
	}
	witness.Covered = make(map[int]int, n-1)
	used := make(map[int]bool, n-1)
	final := model.RunPath(initial, witness.Execution)
	for _, pid := range r {
		reg, ok := final.CoveredRegister(pid)
		if !ok || used[reg] {
			return nil, fmt.Errorf("theorem 1: p%d lost its distinct cover", pid)
		}
		witness.Covered[pid], used[reg] = reg, true
	}
	zReg, ok := final.CoveredRegister(z)
	if !ok || zReg != outside || used[zReg] {
		return nil, fmt.Errorf("theorem 1: z=p%d not poised on a fresh register", z)
	}
	witness.Covered[z] = zReg
	witness.Registers = len(witness.Covered)
	witness.OracleStats = e.oracle.Stats()
	if witness.Registers < n-1 {
		return nil, fmt.Errorf("theorem 1: witnessed only %d registers, expected >= %d",
			witness.Registers, n-1)
	}
	return witness, nil
}

// theorem1Pair handles the n=2 case of the theorem's proof.
func (e *Engine) theorem1Pair(ctx context.Context, m model.Machine, initial model.Config, w *Theorem1Witness) (*Theorem1Witness, error) {
	zeta, _, err := e.oracle.SoloDeciding(ctx, initial, 0)
	if err != nil {
		return nil, fmt.Errorf("theorem 1 (n=2): %w", err)
	}
	d := initial
	for i, mv := range zeta {
		op := d.State(0).Pending()
		if op.Kind == model.OpWrite {
			w.Execution = append(model.Path{}, zeta[:i]...)
			w.Covered = map[int]int{0: op.Reg}
			w.Registers = 1
			w.Phases = []Phase{{Label: "ζ (p0 solo, truncated before its first write)", Steps: i}}
			w.OracleStats = e.oracle.Stats()
			return w, nil
		}
		d = explore.Apply(d, mv)
	}
	return nil, fmt.Errorf(
		"theorem 1 violated at n=2: p0 decided solo without writing (p1 cannot distinguish; protocol %s is not a consensus protocol)",
		m.Name())
}
