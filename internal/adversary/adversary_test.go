package adversary

import (
	"context"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/valency"
)

func newEngine(opts explore.Options) *Engine {
	return New(valency.New(opts))
}

func diskEngine() *Engine {
	return newEngine(explore.Options{
		KeyFn: consensus.DiskRace{}.CanonicalKey,
		KeyTo: consensus.DiskRace{}.CanonicalKeyTo,
	})
}

func allPids(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestInitialBivalentFlood verifies Proposition 2 on the n=2 Flood protocol.
func TestInitialBivalentFlood(t *testing.T) {
	e := newEngine(explore.Options{})
	c, err := e.InitialBivalent(context.Background(), consensus.Flood{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumProcesses(); got != 2 {
		t.Fatalf("NumProcesses = %d, want 2", got)
	}
}

// TestInitialBivalentDiskRace verifies Proposition 2 on DiskRace for
// n = 2, 3, 4.
func TestInitialBivalentDiskRace(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		e := diskEngine()
		if _, err := e.InitialBivalent(context.Background(), consensus.DiskRace{}, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTheorem1FloodN2 runs the n=2 case of the theorem against the verified
// finite-state protocol.
func TestTheorem1FloodN2(t *testing.T) {
	e := newEngine(explore.Options{})
	w, err := e.Theorem1(context.Background(), consensus.Flood{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Registers < 1 {
		t.Fatalf("witnessed %d registers, want >= 1", w.Registers)
	}
	t.Logf("%v", w)
}

// TestTheorem1DiskRace is experiment E1's core: the covering/valency
// adversary forces DiskRace to exhibit n-1 distinct registers.
func TestTheorem1DiskRace(t *testing.T) {
	sizes := []int{2, 3}
	for _, n := range sizes {
		e := diskEngine()
		w, err := e.Theorem1(context.Background(), consensus.DiskRace{}, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w.Registers < n-1 {
			t.Fatalf("n=%d: witnessed %d registers, want >= %d", n, w.Registers, n-1)
		}
		t.Logf("%v", w)
		t.Logf("oracle: %+v", w.OracleStats)
	}
}

// TestLemma1DiskRace checks Lemma 1 standalone at n=3: it yields a process z
// and execution φ with P-{z} bivalent afterwards (the bivalence is verified
// inside Lemma1; here we check the interface contract).
func TestLemma1DiskRace(t *testing.T) {
	e := diskEngine()
	c, err := e.InitialBivalent(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	phi, z, err := e.Lemma1(context.Background(), c, allPids(3))
	if err != nil {
		t.Fatal(err)
	}
	if z < 0 || z > 2 {
		t.Fatalf("z = %d out of range", z)
	}
	set := model.PidSet(allPids(3))
	if !phi.OnlyBy(set) {
		t.Fatalf("φ contains steps outside P: %v", phi)
	}
	t.Logf("|φ| = %d, z = p%d", len(phi), z)
}

// TestLemma2RequiresCover checks the Lemma 2 error path: a process whose
// solo run writes only covered registers cannot exist for a correct
// protocol, but the cover-set precondition must be enforced.
func TestLemma2RequiresCover(t *testing.T) {
	e := newEngine(explore.Options{})
	c, err := e.InitialBivalent(context.Background(), consensus.Flood{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// p1 is poised to read in the initial configuration, so {p1} is not a
	// covering set.
	if _, _, err := e.Lemma2(context.Background(), c, []int{1}, 0); err == nil {
		t.Fatal("expected an error for a non-covering set")
	}
}

// TestTheorem1CatchesBrokenProtocol documents the adversary's behaviour on a
// protocol that is not a consensus protocol: the constructions may fail with
// an explicit violation error or may still terminate (the proof's guarantees
// are vacuous without Agreement), but they must not hang or panic.
func TestTheorem1CatchesBrokenProtocol(t *testing.T) {
	e := newEngine(explore.Options{})
	w, err := e.Theorem1(context.Background(), consensus.EagerFlood{}, 3)
	if err != nil {
		t.Logf("adversary rejected eagerflood: %v", err)
		return
	}
	t.Logf("adversary terminated on eagerflood with %d registers (guarantee vacuous)", w.Registers)
}

// TestEngineErrorPaths covers the guard rails of every construction.
func TestEngineErrorPaths(t *testing.T) {
	e := diskEngine()
	c, err := e.InitialBivalent(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.InitialBivalent(context.Background(), consensus.DiskRace{}, 1); err == nil {
		t.Fatal("InitialBivalent accepted n=1")
	}
	if _, _, err := e.Lemma1(context.Background(), c, []int{0, 1}); err == nil {
		t.Fatal("Lemma1 accepted |P|=2")
	}
	if _, _, err := e.Lemma3(context.Background(), c, allPids(3), nil); err == nil {
		t.Fatal("Lemma3 accepted empty covering set")
	}
	// After its phase-1 write, a DiskRace process is poised to read, so
	// {p0} is no longer a covering set.
	stepped := c.StepDet(0)
	if _, _, err := e.Lemma3(context.Background(), stepped, allPids(3), []int{0}); err == nil {
		t.Fatal("Lemma3 accepted a non-covering (reading) process")
	}
	if _, err := e.Lemma4(context.Background(), c, []int{0}); err == nil {
		t.Fatal("Lemma4 accepted |P|=1")
	}
}

// TestLemma3OnRealCover drives DiskRace until a process covers a register
// and exercises Lemma 3 standalone.
func TestLemma3OnRealCover(t *testing.T) {
	e := diskEngine()
	initial, err := e.InitialBivalent(context.Background(), consensus.DiskRace{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Initially every DiskRace process is poised on its phase-1 write, so
	// {p2} is a covering set and {p0,p1} must be bivalent.
	phi, q, err := e.Lemma3(context.Background(), initial, allPids(3), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 && q != 1 {
		t.Fatalf("critical process p%d not in Q", q)
	}
	set := model.PidSet([]int{0, 1})
	if !phi.OnlyBy(set) {
		t.Fatalf("φ not Q-only: %v", phi)
	}
	t.Logf("|φ|=%d, q=p%d", len(phi), q)
}

// TestLemma4NotBivalent rejects a univalent starting set.
func TestLemma4NotBivalent(t *testing.T) {
	e := diskEngine()
	inputs := []model.Value{"1", "1", "1"}
	c := model.NewConfig(consensus.DiskRace{}, inputs)
	if _, err := e.Lemma4(context.Background(), c, allPids(3)); err == nil {
		t.Fatal("Lemma4 accepted a univalent configuration (all inputs equal)")
	}
}
