package adversary

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/valency"
)

// syncBuffer lets the engine goroutine write trace records while the test
// goroutine polls the debug endpoint.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTheorem1N4Traced runs the real n=4 DiskRace construction with the
// observability layer enabled end to end: the JSONL trace must bracket
// every Lemma 1 peel in a span, and the /progress endpoint must serve a
// well-formed snapshot while the construction is still running (experiment
// E16's acceptance shape, via httptest instead of a real port).
func TestTheorem1N4Traced(t *testing.T) {
	var buf syncBuffer
	scope := obs.NewScope(obs.NewTracer(&buf))
	srv := httptest.NewServer(obs.Handler(scope))
	defer srv.Close()

	opts := explore.Options{
		KeyFn: consensus.DiskRace{}.CanonicalKey,
		KeyTo: consensus.DiskRace{}.CanonicalKeyTo,
		Obs:   scope,
	}
	engine := New(valency.New(opts))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		w, err := engine.Theorem1(ctx, consensus.DiskRace{}, 4)
		if err == nil && w.Registers < 3 {
			t.Errorf("witnessed %d registers, want >= 3", w.Registers)
		}
		done <- err
	}()

	// Poll /progress until the engine is demonstrably mid-run (it has
	// named a phase and visited configurations), then check the snapshot
	// is well-formed. The first exploration starts within milliseconds;
	// the whole run takes seconds.
	var mid obs.Snapshot
	sawMidRun := false
	for i := 0; i < 2000 && !sawMidRun; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			t.Fatal("construction finished before /progress showed any work")
		default:
		}
		resp, err := http.Get(srv.URL + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&mid)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/progress is not JSON: %v", err)
		}
		sawMidRun = mid.Phase != "" && mid.Configs > 0
		time.Sleep(time.Millisecond)
	}
	if !sawMidRun {
		t.Fatal("no mid-run /progress snapshot within 2 s")
	}
	if mid.ElapsedSec <= 0 || mid.ConfigsPerSec <= 0 || mid.Spans == 0 {
		t.Fatalf("mid-run snapshot not well-formed: %+v", mid)
	}
	t.Logf("mid-run /progress: %+v", mid)

	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Every Lemma 1 peel must appear as a span: starts and ends pair by
	// id, and each end reports which process was peeled.
	type rec map[string]any
	starts, ends := map[float64]rec{}, map[float64]rec{}
	var theorem1End rec
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		switch {
		case r["msg"] == "lemma1" && r["t"] == "span_start":
			starts[r["span"].(float64)] = r
		case r["msg"] == "lemma1" && r["t"] == "span_end":
			ends[r["span"].(float64)] = r
		case r["msg"] == "theorem1" && r["t"] == "span_end":
			theorem1End = r
		}
	}
	if len(starts) == 0 {
		t.Fatal("no lemma1 spans in the trace")
	}
	if len(starts) != len(ends) {
		t.Fatalf("%d lemma1 span starts but %d ends", len(starts), len(ends))
	}
	for id, start := range starts {
		end, ok := ends[id]
		if !ok {
			t.Fatalf("lemma1 span %v never ended (started: %v)", id, start)
		}
		if _, ok := end["peeled"]; !ok {
			t.Fatalf("lemma1 span %v ended without a peeled process: %v", id, end)
		}
		if _, ok := end["dur_ms"]; !ok {
			t.Fatalf("lemma1 span %v ended without dur_ms: %v", id, end)
		}
	}
	if theorem1End == nil {
		t.Fatal("no theorem1 span_end in the trace")
	}
	if theorem1End["registers"] != float64(3) {
		t.Fatalf("theorem1 span reports %v registers, want 3", theorem1End["registers"])
	}
	t.Logf("%d lemma1 peel spans, all paired", len(starts))
}
