// Package repro_test is the benchmark harness: one benchmark per experiment
// row of EXPERIMENTS.md (the "tables and figures" of this theory paper being
// its theorem and companion bounds). Custom metrics carry the quantities the
// claims are about — registers witnessed, state-change cost, bits — so that
// `go test -bench . -benchmem` regenerates the experiment tables directly.
package repro_test

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/encdec"
	"repro/internal/explore"
	"repro/internal/leader"
	"repro/internal/model"
	"repro/internal/mutex"
	"repro/internal/native"
	"repro/internal/perturb"
	"repro/internal/valency"
)

func diskOpts() explore.Options {
	return explore.Options{
		KeyFn: consensus.DiskRace{}.CanonicalKey,
		KeyTo: consensus.DiskRace{}.CanonicalKeyTo,
	}
}

// BenchmarkTheorem1 is experiment E1: the covering/valency adversary forces
// n-1 distinct registers on live protocols. Metrics: registers witnessed
// (the claim), oracle configurations searched (the cost of deciding the
// proof's quantifiers).
func BenchmarkTheorem1(b *testing.B) {
	cases := []struct {
		protocol string
		machine  model.Machine
		opts     explore.Options
		n        int
	}{
		{"flood/n=2", consensus.Flood{}, explore.Options{}, 2},
		{"diskrace/n=2", consensus.DiskRace{}, diskOpts(), 2},
		{"diskrace/n=3", consensus.DiskRace{}, diskOpts(), 3},
	}
	for _, tc := range cases {
		b.Run(tc.protocol, func(b *testing.B) {
			var regs, configs int
			for i := 0; i < b.N; i++ {
				engine := adversary.New(valency.New(tc.opts))
				w, err := engine.Theorem1(context.Background(), tc.machine, tc.n)
				if err != nil {
					b.Fatal(err)
				}
				regs = w.Registers
				configs = engine.Oracle().Stats().Configs
			}
			b.ReportMetric(float64(regs), "registers")
			b.ReportMetric(float64(tc.n-1), "bound(n-1)")
			b.ReportMetric(float64(configs), "oracle-configs")
		})
	}
}

// BenchmarkUpperBound is experiment E2: the native n-register protocol
// races n goroutines and writes exactly n registers.
func BenchmarkUpperBound(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(sizeName(n), func(b *testing.B) {
			var touched int
			for i := 0; i < b.N; i++ {
				d := native.NewDiskRace(n)
				var wg sync.WaitGroup
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						if _, err := d.Propose(pid, pid%2); err != nil {
							b.Error(err)
						}
					}(pid)
				}
				wg.Wait()
				touched = d.Stats().Touched
			}
			b.ReportMetric(float64(touched), "registers")
		})
	}
}

// BenchmarkValency is experiment E3: deciding Proposition 2's quantifiers —
// the cost of one initial-configuration valency query per protocol.
func BenchmarkValency(b *testing.B) {
	cases := []struct {
		name    string
		machine model.Machine
		opts    explore.Options
		n       int
	}{
		{"flood/n=2", consensus.Flood{}, explore.Options{}, 2},
		{"flood/n=3", consensus.Flood{}, explore.Options{}, 3},
		{"diskrace/n=3", consensus.DiskRace{}, diskOpts(), 3},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			inputs := make([]model.Value, tc.n)
			for i := range inputs {
				inputs[i] = "1"
			}
			inputs[0] = "0"
			all := make([]int, tc.n)
			for i := range all {
				all[i] = i
			}
			var configs int
			for i := 0; i < b.N; i++ {
				oracle := valency.New(tc.opts)
				c := model.NewConfig(tc.machine, inputs)
				v, err := oracle.Decidable(context.Background(), c, all)
				if err != nil {
					b.Fatal(err)
				}
				if !v.Bivalent() {
					b.Fatal("initial configuration not bivalent")
				}
				configs = oracle.Stats().Configs
			}
			b.ReportMetric(float64(configs), "configs")
		})
	}
}

// BenchmarkLemmas is experiment E4: the per-lemma constructions at n=3 on
// DiskRace (the figures of the paper, regenerated as executions).
func BenchmarkLemmas(b *testing.B) {
	all := []int{0, 1, 2}
	setup := func(b *testing.B) (*adversary.Engine, model.Config) {
		engine := adversary.New(valency.New(diskOpts()))
		c, err := engine.InitialBivalent(context.Background(), consensus.DiskRace{}, 3)
		if err != nil {
			b.Fatal(err)
		}
		return engine, c
	}
	b.Run("lemma1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, c := setup(b)
			if _, _, err := engine.Lemma1(context.Background(), c, all); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lemma4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, c := setup(b)
			if _, err := engine.Lemma4(context.Background(), c, all); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lemma3+lemma2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, c := setup(b)
			l4, err := engine.Lemma4(context.Background(), c, all)
			if err != nil {
				b.Fatal(err)
			}
			r := model.Without(all, l4.Q...)
			phi, q, err := engine.Lemma3(context.Background(), l4.Config, all, r)
			if err != nil {
				b.Fatal(err)
			}
			z := l4.Q[0]
			if z == q {
				z = l4.Q[1]
			}
			if _, _, err := engine.Lemma2(context.Background(), model.RunPath(l4.Config, phi), r, z); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPerturbation is experiment E5: the JTT adversary's covering
// grows to n-1 registers, and the reader's solo cost matches.
func BenchmarkPerturbation(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(sizeName(n), func(b *testing.B) {
			var w *perturb.Witness
			for i := 0; i < b.N; i++ {
				var err error
				w, err = perturb.NewAdversary(perturb.SWCounter{}).Run(n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.Registers), "registers")
			b.ReportMetric(float64(w.ReaderSoloSteps), "reader-solo-steps")
		})
	}
}

// BenchmarkMutexCost is experiment E6: state-change cost of canonical
// executions, Peterson vs tournament, against n·log₂ n.
func BenchmarkMutexCost(b *testing.B) {
	for _, alg := range []mutex.Algorithm{mutex.Peterson{}, mutex.Tournament{}} {
		for _, n := range []int{4, 8, 16, 32, 64} {
			b.Run(alg.Name()+"/"+sizeName(n), func(b *testing.B) {
				var cost int64
				for i := 0; i < b.N; i++ {
					res, err := mutex.Run(alg, n, mutex.RoundRobin())
					if err != nil {
						b.Fatal(err)
					}
					cost = res.Cost
				}
				b.ReportMetric(float64(cost), "state-change-cost")
				b.ReportMetric(float64(cost)/(float64(n)*math.Log2(float64(n))), "cost-per-nlgn")
			})
		}
	}
}

// BenchmarkEncoder is experiment E7: the Fan-Lynch encoder/decoder round
// trip, with the information floor as a metric.
func BenchmarkEncoder(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			var bits int
			var cost int64
			for i := 0; i < b.N; i++ {
				perm := rng.Perm(n)
				enc, err := encdec.EncodeExecution(mutex.Tournament{}, perm)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := encdec.DecodeExecution(mutex.Tournament{}, enc); err != nil {
					b.Fatal(err)
				}
				bits = enc.BitLen
				cost = enc.Cost
			}
			b.ReportMetric(float64(bits), "bits")
			b.ReportMetric(float64(cost), "cost")
		})
	}
}

// BenchmarkLeaderElection is experiment E8: weak leader election from
// registers, with the register count (the contrast to consensus) as metric.
func BenchmarkLeaderElection(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			var regs int
			for i := 0; i < b.N; i++ {
				e := leader.NewElection(n)
				leaders := 0
				var mu sync.Mutex
				var wg sync.WaitGroup
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						won, err := e.Run(pid)
						if err != nil {
							b.Error(err)
							return
						}
						if won {
							mu.Lock()
							leaders++
							mu.Unlock()
						}
					}(pid)
				}
				wg.Wait()
				if leaders != 1 {
					b.Fatalf("%d leaders", leaders)
				}
				regs = e.Registers()
			}
			b.ReportMetric(float64(regs), "registers")
		})
	}
}

// BenchmarkRandomized is experiment E9: randomized consensus work (total
// local coin flips and rounds) across sizes.
func BenchmarkRandomized(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			var flips, rounds int
			for i := 0; i < b.N; i++ {
				r := native.NewRandomized(n)
				results := make([]native.Result, n)
				var wg sync.WaitGroup
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(i*1000 + pid)))
						res, err := r.Propose(pid, pid%2, rng)
						if err != nil {
							b.Error(err)
							return
						}
						results[pid] = res
					}(pid)
				}
				wg.Wait()
				flips, rounds = 0, 0
				for _, res := range results {
					flips += res.Flips
					if res.Round+1 > rounds {
						rounds = res.Round + 1
					}
				}
			}
			b.ReportMetric(float64(flips), "coin-flips")
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkModelCheck measures the verification substrate itself (the cost
// of exhaustively checking flood at n=2 and boundedly at n=3).
func BenchmarkModelCheck(b *testing.B) {
	b.Run("flood/n=2/exhaustive", func(b *testing.B) {
		var configs int
		for i := 0; i < b.N; i++ {
			report, err := check.Consensus(context.Background(), consensus.Flood{}, 2, check.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if !report.OK() {
				b.Fatal(report)
			}
			configs = report.Configs
		}
		b.ReportMetric(float64(configs), "configs")
	})
	b.Run("diskrace/n=2/exhaustive", func(b *testing.B) {
		var configs int
		for i := 0; i < b.N; i++ {
			report, err := check.Consensus(context.Background(), consensus.DiskRace{}, 2, check.Options{Explore: diskOpts()})
			if err != nil {
				b.Fatal(err)
			}
			if !report.OK() {
				b.Fatal(report)
			}
			configs = report.Configs
		}
		b.ReportMetric(float64(configs), "configs")
	})
}

// BenchmarkProposeFacade measures the end-user fast path.
func BenchmarkProposeFacade(b *testing.B) {
	inputs := []int{0, 1, 1, 0}
	for i := 0; i < b.N; i++ {
		if _, err := core.Propose(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	return "n=" + strconv.Itoa(n)
}
