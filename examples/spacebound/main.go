// Spacebound walks the whole lower-bound construction at n=3, printing each
// artifact of the paper's proof as it is built: the bivalent initial
// configuration (Proposition 2), Lemma 4's covering configuration, Lemma 3's
// critical process, Lemma 2's forced outside write, and the final witness —
// with the full execution transcript.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/valency"
)

func main() {
	machine := consensus.DiskRace{}
	oracle := valency.New(explore.Options{KeyFn: machine.CanonicalKey, KeyTo: machine.CanonicalKeyTo})
	engine := adversary.New(oracle)
	const n = 3

	initial, err := engine.InitialBivalent(context.Background(), machine, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Proposition 2: initial configuration with inputs (0,1,1) is bivalent for {p0,p1}")

	all := []int{0, 1, 2}
	l4, err := engine.Lemma4(context.Background(), initial, all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 4: after %d steps, pair %v is bivalent and %d process(es) cover distinct registers %v\n",
		len(l4.Alpha), l4.Q, len(l4.Covered), l4.Covered)

	r := model.Without(all, l4.Q...)
	phi, q, err := engine.Lemma3(context.Background(), l4.Config, all, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 3: Q-only execution of %d steps makes R∪{p%d} bivalent after the block write\n",
		len(phi), q)

	var z int
	for _, pid := range l4.Q {
		if pid != q {
			z = pid
		}
	}
	afterPhi := model.RunPath(l4.Config, phi)
	zeta, outside, err := engine.Lemma2(context.Background(), afterPhi, r, z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 2: p%d's solo deciding run is forced to write register %d, outside the cover\n",
		z, outside)

	w, err := engine.Theorem1(context.Background(), machine, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 1: %v\n\n", w)
	fmt.Print(trace.CoverTable(w))
	fmt.Println("\nwitness execution transcript:")
	fmt.Print(trace.Transcript(initial, w.Execution))
	_ = zeta
}
