// Mutexcost demonstrates the deck's part II end to end: canonical mutual
// exclusion executions, the state-change cost model, and the Fan-Lynch
// encoder/decoder — a random critical-section order is realised by a real
// algorithm, compressed to ⌈log₂ n!⌉ bits, and decompressed by re-running
// the algorithm itself.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/encdec"
	"repro/internal/mutex"
)

func main() {
	const n = 8
	perm := rand.New(rand.NewSource(2016)).Perm(n)
	fmt.Printf("target critical-section order: %v\n", perm)

	enc, err := encdec.EncodeExecution(mutex.Tournament{}, perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical execution built: state-change cost %d, encoded in %d bits (%x)\n",
		enc.Cost, enc.BitLen, enc.Bits)

	back, res, err := encdec.DecodeExecution(mutex.Tournament{}, enc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoder re-simulated the algorithm: order %v, cost %d\n", back, res.Cost)
	fmt.Printf("information floor log2(%d!) = %d bits <= cost %d — the Fan-Lynch bound in action\n",
		n, encdec.FactorialBits(n), res.Cost)

	fmt.Println("\ncost growth under round-robin contention:")
	for _, size := range []int{4, 8, 16, 32} {
		p, err := mutex.Run(mutex.Peterson{}, size, mutex.RoundRobin())
		if err != nil {
			log.Fatal(err)
		}
		t, err := mutex.Run(mutex.Tournament{}, size, mutex.RoundRobin())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%2d  peterson=%6d  tournament=%5d\n", size, p.Cost, t.Cost)
	}
}
