// Randomized runs the register-based randomized consensus (conciliator +
// adopt-commit rounds with a weak shared coin) that the paper's Section 1
// cites as the way randomization circumvents the FLP impossibility, and
// reports rounds and coin-flip work.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/native"
)

func main() {
	const n = 6
	for trial := 0; trial < 5; trial++ {
		r := native.NewRandomized(n)
		results := make([]native.Result, n)
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(trial*100 + pid)))
				res, err := r.Propose(pid, pid%2, rng)
				if err != nil {
					log.Fatal(err)
				}
				results[pid] = res
			}(pid)
		}
		wg.Wait()
		flips, maxRound := 0, 0
		for _, res := range results {
			flips += res.Flips
			if res.Round > maxRound {
				maxRound = res.Round
			}
			if res.Value != results[0].Value {
				log.Fatalf("agreement violated: %+v", results)
			}
		}
		fmt.Printf("trial %d: agreed on %d within %d round(s), %d total coin flips\n",
			trial, results[0].Value, maxRound+1, flips)
	}
}
