// Brokenhunt shows the verification side of the library: exhaustive model
// checking catching three deliberately broken consensus protocols, with the
// minimal counterexample trace printed for the first. Each bug is subtle —
// strict-majority ties, single-scan deciding, coin-resolved ties — and each
// survives casual testing; exhaustive interleaving (and coin) exploration
// finds all three in under a second.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	for _, tc := range []struct {
		protocol string
		n        int
		why      string
	}{
		{core.ProtocolGreedyFlood, 2, "strict-majority ties let a stale covering write push a second decision"},
		{core.ProtocolEagerFlood, 3, "single-scan deciding accepts unanimity assembled across epochs"},
		{core.ProtocolCoinFlood, 2, "adversarially resolved coins steer a laggard over a decision"},
	} {
		report, err := core.Verify(context.Background(), tc.protocol, tc.n, 0)
		if err != nil {
			log.Fatal(err)
		}
		if report.OK() {
			log.Fatalf("%s unexpectedly verified — a bug in the bug!", tc.protocol)
		}
		v := report.Violations[0]
		fmt.Printf("%-12s n=%d: %v violation after %d steps (%s)\n",
			tc.protocol, tc.n, v.Kind, len(v.Path), tc.why)
	}

	// Replay the greedyflood counterexample step by step.
	report, err := core.Verify(context.Background(), core.ProtocolGreedyFlood, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	v := report.Violations[0]
	m, _, err := core.Machine(core.ProtocolGreedyFlood)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedyflood counterexample (inputs %v):\n", v.Inputs)
	fmt.Print(trace.Transcript(model.NewConfig(m, v.Inputs), v.Path))

	// And the healthy protocol passes the same gauntlet.
	ok, err := core.Verify(context.Background(), core.ProtocolFlood, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontrol: %v\n", ok)
}
