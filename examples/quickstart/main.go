// Quickstart: the three headline operations of the library in ~40 lines —
// run consensus natively, verify a protocol exhaustively, and reproduce the
// paper's lower bound on a live protocol.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// 1. Run obstruction-free consensus among five goroutines.
	decided, err := core.Propose([]int{0, 1, 1, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("five processes with inputs [0 1 1 0 1] agreed on %d\n", decided)

	// 2. Exhaustively verify a protocol for two processes: every input
	// vector, every interleaving.
	report, err := core.Verify(context.Background(), core.ProtocolFlood, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model checker: %v\n", report)

	// 3. Reproduce the paper's Theorem 1: the adversary drives the
	// protocol into a configuration where n-1 = 2 distinct registers are
	// covered, witnessing the space lower bound.
	witness, err := core.Attack(context.Background(), core.ProtocolDiskRace, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound witness: %v\n", witness)
}
